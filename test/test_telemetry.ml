(* The deterministic telemetry layer: tracer semantics, the metrics
   registry, the three exporters (round-tripped where a parser
   exists), and the stack-level contract — telemetry observes the
   tuning computation and never steers it. *)

open Harmony
open Harmony_objective
module Param = Harmony_param.Param
module Space = Harmony_param.Space
module Telemetry = Harmony_telemetry.Telemetry
module Export = Harmony_telemetry.Export
module Summary = Harmony_telemetry.Summary
module Tjson = Harmony_telemetry.Tjson

(* ------------------------------------------------------------------ *)
(* Tracer semantics *)

let event_name = function
  | Telemetry.Begin { name; _ }
  | Telemetry.End { name; _ }
  | Telemetry.Instant { name; _ } ->
      name

let event_ts = function
  | Telemetry.Begin { ts; _ } | Telemetry.End { ts; _ }
  | Telemetry.Instant { ts; _ } ->
      ts

let test_span_nesting () =
  let t = Telemetry.create () in
  let r =
    Telemetry.span t "outer" (fun () ->
        Alcotest.(check int) "depth inside outer" 1 (Telemetry.depth t);
        Telemetry.span t "inner" (fun () ->
            Alcotest.(check int) "depth inside inner" 2 (Telemetry.depth t));
        17)
  in
  Alcotest.(check int) "span returns f's value" 17 r;
  Alcotest.(check int) "all spans closed" 0 (Telemetry.depth t);
  let names = List.map event_name (Telemetry.events t) in
  Alcotest.(check (list string))
    "record order" [ "outer"; "inner"; "inner"; "outer" ] names;
  (match Telemetry.events t with
  | [ Telemetry.Begin _; Telemetry.Begin _; Telemetry.End _; Telemetry.End _ ]
    ->
      ()
  | _ -> Alcotest.fail "expected Begin Begin End End");
  (* The default clock is logical: event sequence numbers. *)
  Alcotest.(check (list (float 1e-9)))
    "logical timestamps" [ 0.0; 1.0; 2.0; 3.0 ]
    (List.map event_ts (Telemetry.events t))

let test_span_end_on_exception () =
  let t = Telemetry.create () in
  (try Telemetry.span t "failing" (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "span closed by the exception path" 0 (Telemetry.depth t);
  match Telemetry.events t with
  | [ Telemetry.Begin _; Telemetry.End _ ] -> ()
  | _ -> Alcotest.fail "expected a Begin/End pair"

let test_injected_clock () =
  let fake = ref 100.0 in
  let t = Telemetry.create ~clock:(fun () -> !fake) () in
  Telemetry.instant t "a";
  fake := 250.0;
  Telemetry.instant t "b";
  Alcotest.(check (list (float 1e-9)))
    "clock readings recorded" [ 100.0; 250.0 ]
    (List.map event_ts (Telemetry.events t))

let test_off_is_noop () =
  let t = Telemetry.off in
  Alcotest.(check bool) "disabled" false (Telemetry.enabled t);
  let r = Telemetry.span t "s" (fun () -> 3) in
  Alcotest.(check int) "span still runs f" 3 r;
  Telemetry.instant t "i";
  Telemetry.incr t "c";
  Telemetry.gauge t "g" 1.0;
  Telemetry.observe t "h" 1.0;
  Alcotest.(check int) "no events" 0 (Telemetry.event_count t);
  Alcotest.(check int) "counter reads 0" 0 (Telemetry.counter_value t "c");
  Alcotest.(check bool) "no gauge" true (Telemetry.gauge_value t "g" = None);
  Alcotest.(check int) "no histograms" 0 (List.length (Telemetry.histograms t))

(* ------------------------------------------------------------------ *)
(* Metrics registry *)

let test_registry () =
  let t = Telemetry.create () in
  Telemetry.incr t "b.counter";
  Telemetry.incr t ~by:4 "a.counter";
  Telemetry.incr t "b.counter";
  Telemetry.gauge t "g" 2.0;
  Telemetry.gauge_max t "hw" 3.0;
  Telemetry.gauge_max t "hw" 1.0;
  Alcotest.(check (list (pair string int)))
    "counters sorted by name"
    [ ("a.counter", 4); ("b.counter", 2) ]
    (Telemetry.counters t);
  Alcotest.(check bool) "gauge set" true (Telemetry.gauge_value t "g" = Some 2.0);
  Alcotest.(check bool)
    "gauge_max keeps the high-water mark" true
    (Telemetry.gauge_value t "hw" = Some 3.0);
  Telemetry.observe t ~bounds:[| 1.0; 10.0 |] "h" 0.5;
  Telemetry.observe t "h" 5.0;
  Telemetry.observe t "h" 99.0;
  match Telemetry.histograms t with
  | [ ("h", snap) ] ->
      Alcotest.(check int) "count" 3 snap.Telemetry.count;
      Alcotest.(check (float 1e-9)) "sum" 104.5 snap.Telemetry.sum;
      Alcotest.(check (list (pair (float 1e-9) int)))
        "buckets: bounds fixed at first observe, plus overflow"
        [ (1.0, 1); (10.0, 1); (infinity, 1) ]
        snap.Telemetry.buckets
  | _ -> Alcotest.fail "expected one histogram"

let test_declare_histogram () =
  let t = Telemetry.create () in
  Telemetry.declare_histogram t ~bounds:[| 1.0; 5.0; 20.0 |] "lat";
  (* Bounds at a later observe are ignored: the declaration fixed them. *)
  Telemetry.observe t ~bounds:[| 1000.0 |] "lat" 3.0;
  Telemetry.observe t "lat" 0.5;
  Telemetry.observe t "lat" 99.0;
  (match Telemetry.histograms t with
  | [ ("lat", snap) ] ->
      Alcotest.(check (list (pair (float 1e-9) int)))
        "declared bounds stick"
        [ (1.0, 1); (5.0, 1); (20.0, 0); (infinity, 1) ]
        snap.Telemetry.buckets
  | _ -> Alcotest.fail "expected one histogram");
  (* Re-declaring an existing histogram is a no-op. *)
  Telemetry.declare_histogram t ~bounds:[| 7.0 |] "lat";
  match Telemetry.histograms t with
  | [ ("lat", snap) ] ->
      Alcotest.(check int) "observations survive re-declare" 3
        snap.Telemetry.count
  | _ -> Alcotest.fail "expected one histogram"

let test_record_events_off () =
  let t = Telemetry.create ~record_events:false () in
  Alcotest.(check bool) "handle still enabled" true (Telemetry.enabled t);
  let r = Telemetry.span t "s" (fun () -> Telemetry.incr t "inside"; 11) in
  Alcotest.(check int) "span still runs f" 11 r;
  Telemetry.instant t "i";
  Telemetry.observe t "h" 2.0;
  Alcotest.(check int) "no event payloads retained" 0
    (List.length (Telemetry.events t));
  (* The logical clock still ticks so span latencies stay measurable. *)
  Alcotest.(check bool) "event_count still advances" true
    (Telemetry.event_count t > 0);
  Alcotest.(check int) "counters still live" 1 (Telemetry.counter_value t "inside");
  Alcotest.(check int) "histograms still live" 1
    (List.length (Telemetry.histograms t))

let test_quantile () =
  let snap count buckets = { Telemetry.count; sum = 0.0; buckets } in
  let b = [ (1.0, 5); (10.0, 4); (100.0, 1); (infinity, 0) ] in
  Alcotest.(check (float 1e-9)) "p50 in first bucket" 1.0
    (Telemetry.quantile (snap 10 b) 0.5);
  Alcotest.(check (float 1e-9)) "p90 in second bucket" 10.0
    (Telemetry.quantile (snap 10 b) 0.9);
  Alcotest.(check (float 1e-9)) "p99 rounds up to the last occupied" 100.0
    (Telemetry.quantile (snap 10 b) 0.99);
  Alcotest.(check (float 1e-9)) "q=0 is the smallest bound" 1.0
    (Telemetry.quantile (snap 10 b) 0.0);
  Alcotest.(check bool) "overflow lands at infinity" true
    (Telemetry.quantile (snap 1 [ (1.0, 0); (infinity, 1) ]) 0.99 = infinity);
  Alcotest.(check bool) "empty histogram is nan" true
    (Float.is_nan (Telemetry.quantile (snap 0 b) 0.5));
  Alcotest.(check bool) "out-of-range q is nan" true
    (Float.is_nan (Telemetry.quantile (snap 10 b) 1.5))

let test_merged () =
  let a = Telemetry.create () in
  let b = Telemetry.create () in
  Telemetry.incr a ~by:3 "msgs";
  Telemetry.incr b ~by:4 "msgs";
  Telemetry.incr b "only_b";
  Telemetry.gauge a "hw" 2.0;
  Telemetry.gauge b "hw" 5.0;
  let bounds = [| 1.0; 10.0 |] in
  Telemetry.observe a ~bounds "lat" 0.5;
  Telemetry.observe a ~bounds "lat" 40.0;
  Telemetry.observe b ~bounds "lat" 7.0;
  let m = Telemetry.merged [ a; b; Telemetry.off ] in
  Alcotest.(check int) "counters sum" 7 (Telemetry.counter_value m "msgs");
  Alcotest.(check int) "singleton counter kept" 1
    (Telemetry.counter_value m "only_b");
  Alcotest.(check bool) "gauges take the max" true
    (Telemetry.gauge_value m "hw" = Some 5.0);
  (match List.assoc_opt "lat" (Telemetry.histograms m) with
  | Some snap ->
      Alcotest.(check int) "histogram count sums" 3 snap.Telemetry.count;
      Alcotest.(check (float 1e-9)) "histogram sum sums" 47.5
        snap.Telemetry.sum;
      Alcotest.(check (list (pair (float 1e-9) int)))
        "same bounds merge pointwise"
        [ (1.0, 1); (10.0, 1); (infinity, 1) ]
        snap.Telemetry.buckets
  | None -> Alcotest.fail "merged histogram missing");
  (* Sources with disagreeing bounds still merge conservatively:
     count/sum exact, occupancies credited at source upper bounds. *)
  let c = Telemetry.create () in
  Telemetry.observe c ~bounds:[| 5.0 |] "lat" 2.0;
  (match List.assoc_opt "lat" (Telemetry.histograms (Telemetry.merged [ a; c ]))
   with
  | Some snap ->
      Alcotest.(check int) "mismatched-bounds count exact" 3
        snap.Telemetry.count;
      Alcotest.(check (float 1e-9)) "mismatched-bounds sum exact" 42.5
        snap.Telemetry.sum
  | None -> Alcotest.fail "merged histogram missing");
  (* The merged handle is an ordinary handle: exporters accept it. *)
  let text = Export.prometheus m in
  Alcotest.(check bool) "prometheus export of merged registry" true
    (String.length text > 0)

(* ------------------------------------------------------------------ *)
(* Exporters *)

let populated () =
  let t = Telemetry.create () in
  Telemetry.span t "outer" (fun () ->
      Telemetry.instant t ~args:[ ("k", Telemetry.Str "v") ] "tick";
      Telemetry.span t "inner" (fun () -> ()));
  Telemetry.incr t ~by:7 "evals";
  Telemetry.gauge t "depth" 4.0;
  Telemetry.observe t "latency" 0.5;
  Telemetry.observe t "latency" 50.0;
  t

let test_jsonl_roundtrip () =
  let t = populated () in
  let text = Export.jsonl t in
  (* Every line is a standalone JSON object. *)
  List.iter
    (fun line ->
      if String.trim line <> "" then
        match Tjson.parse line with
        | Ok (Tjson.Obj _) -> ()
        | Ok _ -> Alcotest.fail ("non-object line: " ^ line)
        | Error msg -> Alcotest.fail ("unparseable line: " ^ msg))
    (String.split_on_char '\n' text);
  match Summary.of_jsonl text with
  | Error msg -> Alcotest.fail ("summary rejected the export: " ^ msg)
  | Ok s ->
      Alcotest.(check int) "events" 5 s.Summary.events;
      Alcotest.(check int) "no unmatched spans" 0 s.Summary.unmatched;
      Alcotest.(check (list string))
        "span aggregates by name" [ "inner"; "outer" ]
        (List.map (fun sp -> sp.Summary.span_name) s.Summary.spans);
      Alcotest.(check (list (pair string int)))
        "instants" [ ("tick", 1) ] s.Summary.instants;
      Alcotest.(check (list (pair string int)))
        "counters survive" [ ("evals", 7) ] s.Summary.counters;
      (match s.Summary.histograms with
      | [ ("latency", h) ] ->
          Alcotest.(check int) "histogram count" 2 h.Summary.hist_count;
          Alcotest.(check (float 1e-9)) "histogram sum" 50.5 h.Summary.hist_sum
      | _ -> Alcotest.fail "expected the latency histogram")

let test_summary_rejects_garbage () =
  match Summary.of_jsonl "{\"type\":\"instant\",\"name\":\"a\",\"ts\":0}\nnot json\n" with
  | Error msg ->
      Alcotest.(check bool)
        "error names the line" true
        (String.length msg >= 6 && String.sub msg 0 6 = "line 2")
  | Ok _ -> Alcotest.fail "garbage accepted"

let test_chrome_valid () =
  let t = populated () in
  match Tjson.parse (Export.chrome t) with
  | Error msg -> Alcotest.fail ("chrome export is not valid JSON: " ^ msg)
  | Ok json -> (
      match Tjson.member "traceEvents" json with
      | Some (Tjson.List events) ->
          let phase e =
            match Tjson.member "ph" e with Some (Tjson.Str p) -> p | _ -> "?"
          in
          let count p =
            List.length (List.filter (fun e -> phase e = p) events)
          in
          Alcotest.(check int) "B/E balanced" (count "B") (count "E");
          Alcotest.(check int) "two spans" 2 (count "B");
          Alcotest.(check int) "one instant" 1 (count "i");
          Alcotest.(check bool) "metric counter events" true (count "C" > 0)
      | _ -> Alcotest.fail "no traceEvents array")

let test_prometheus_grammar () =
  let t = populated () in
  let lines =
    List.filter
      (fun l -> String.trim l <> "")
      (String.split_on_char '\n' (Export.prometheus t))
  in
  Alcotest.(check bool) "non-empty" true (lines <> []);
  List.iter
    (fun line ->
      if String.length line > 0 && line.[0] = '#' then
        (* Only well-formed TYPE comments. *)
        Alcotest.(check bool)
          ("TYPE comment: " ^ line)
          true
          (String.length line > 7 && String.sub line 0 7 = "# TYPE ")
      else begin
        (* name{labels} value — sample names carry the harmony_ prefix
           and the value parses as a float. *)
        Alcotest.(check bool)
          ("prefixed: " ^ line)
          true
          (String.length line > 8 && String.sub line 0 8 = "harmony_");
        match String.rindex_opt line ' ' with
        | None -> Alcotest.fail ("no value separator: " ^ line)
        | Some i ->
            let value =
              String.sub line (i + 1) (String.length line - i - 1)
            in
            Alcotest.(check bool)
              ("float value: " ^ line)
              true
              (float_of_string_opt value <> None || value = "+Inf")
      end)
    lines

let test_format_selection () =
  let fmt = Alcotest.testable (Fmt.of_to_string Export.format_to_string) ( = ) in
  Alcotest.(check (option fmt))
    "chrome alias" (Some Export.Chrome)
    (Export.format_of_string "trace-event");
  Alcotest.(check (option fmt))
    "prometheus alias" (Some Export.Prometheus)
    (Export.format_of_string "PROM");
  Alcotest.(check (option fmt)) "unknown" None (Export.format_of_string "xml");
  Alcotest.(check fmt) "by extension: .json is chrome" Export.Chrome
    (Export.format_of_filename "run.json");
  Alcotest.(check fmt) "by extension: .prom" Export.Prometheus
    (Export.format_of_filename "metrics.prom");
  Alcotest.(check fmt) "default jsonl" Export.Jsonl
    (Export.format_of_filename "trace.dat")

(* ------------------------------------------------------------------ *)
(* Stack integration *)

let space =
  Space.create
    [
      Param.int_range ~name:"a" ~lo:0 ~hi:10 ~default:5 ();
      Param.int_range ~name:"b" ~lo:0 ~hi:10 ~default:5 ();
      Param.int_range ~name:"c" ~lo:0 ~hi:10 ~default:5 ();
    ]

let obj =
  Objective.create ~space ~direction:Objective.Higher_is_better (fun c ->
      (50.0 *. c.(0)) +. (5.0 *. c.(1)) -. (0.1 *. c.(2)))

let test_tune_identical_with_telemetry () =
  (* The determinism contract: a live handle records the run and never
     steers it.  Render both results to text and compare bytes. *)
  let run telemetry =
    let session = Session.create ~objective:obj ~telemetry () in
    let r = Session.tune ~top_n:2 session in
    Printf.sprintf "%s|%.17g|%d|%s"
      (String.concat ","
         (List.map string_of_int r.Session.tuned_indices))
      r.Session.outcome.Tuner.best_performance
      r.Session.outcome.Tuner.evaluations
      (Session.trace_csv session r)
  in
  let off = run Telemetry.off in
  let live = Telemetry.create () in
  let on = run live in
  Alcotest.(check string) "byte-identical result" off on;
  Alcotest.(check bool) "and the run was actually traced" true
    (Telemetry.event_count live > 0)

let test_seeded_run_trace_is_reproducible () =
  let run () =
    let telemetry = Telemetry.create () in
    let session = Session.create ~objective:obj ~telemetry () in
    ignore (Session.tune ~top_n:2 session);
    Export.jsonl telemetry
  in
  Alcotest.(check string) "same trace bytes" (run ()) (run ())

let test_session_spans_present () =
  (* The acceptance criterion: a seeded tune's Chrome export contains
     spans for the sensitivity sweep, the simplex steps and the
     measurements. *)
  let telemetry = Telemetry.create () in
  let session = Session.create ~objective:obj ~telemetry () in
  ignore (Session.tune ~top_n:2 session);
  let chrome = Export.chrome telemetry in
  (match Tjson.parse chrome with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail ("chrome export invalid: " ^ msg));
  let names =
    List.map
      (fun e -> event_name e)
      (Telemetry.events telemetry)
  in
  List.iter
    (fun required ->
      Alcotest.(check bool) ("span " ^ required) true (List.mem required names))
    [ "session.tune"; "sensitivity"; "simplex.init"; "simplex.step"; "measure" ];
  Alcotest.(check bool) "evaluations counted" true
    (Telemetry.counter_value telemetry "tuner.evaluations" > 0);
  Alcotest.(check bool) "all spans closed" true (Telemetry.depth telemetry = 0)

let test_memo_counters_are_the_registry () =
  (* Satellite: Objective.stats is a thin view over the registry. *)
  let telemetry = Telemetry.create () in
  let cached = Objective.cached ~telemetry obj in
  let c = Space.defaults space in
  ignore (cached.Objective.eval c);
  ignore (cached.Objective.eval c);
  ignore (cached.Objective.eval (Array.map (fun v -> v +. 1.0) c));
  (match Objective.stats cached with
  | None -> Alcotest.fail "cached objective reports no stats"
  | Some s ->
      Alcotest.(check int) "hits view" s.Objective.hits
        (Telemetry.counter_value telemetry "objective.memo.hits");
      Alcotest.(check int) "misses view" s.Objective.misses
        (Telemetry.counter_value telemetry "objective.memo.misses");
      Alcotest.(check int) "hits" 1 s.Objective.hits;
      Alcotest.(check int) "misses" 2 s.Objective.misses);
  (* And without a caller handle the counts still work (private
     registry fallback). *)
  let plain = Objective.cached obj in
  ignore (plain.Objective.eval c);
  ignore (plain.Objective.eval c);
  match Objective.stats plain with
  | Some s ->
      Alcotest.(check int) "fallback hits" 1 s.Objective.hits;
      Alcotest.(check int) "fallback misses" 1 s.Objective.misses
  | None -> Alcotest.fail "no stats on the fallback path"

let test_measure_counters_are_the_registry () =
  let telemetry = Telemetry.create () in
  let measured, handle = Measure.robust ~telemetry obj in
  let c = Space.defaults space in
  ignore (measured.Objective.eval c);
  ignore (measured.Objective.eval c);
  let s = Measure.summary handle in
  Alcotest.(check int) "measurements view" s.Measure.measurements
    (Telemetry.counter_value telemetry "measure.measurements");
  Alcotest.(check int) "attempts view" s.Measure.attempts
    (Telemetry.counter_value telemetry "measure.attempts");
  Alcotest.(check int) "faults view" s.Measure.faults
    (Telemetry.counter_value telemetry "measure.faults");
  Alcotest.(check int) "two measurements" 2 s.Measure.measurements

let test_trace_csv_full_space () =
  (* Satellite: after --top-n the trace still renders every parameter,
     frozen ones as constant columns at their pinned values. *)
  let telemetry = Telemetry.create () in
  let session = Session.create ~objective:obj ~telemetry () in
  let r = Session.tune ~top_n:1 session in
  let csv = Session.trace_csv session r in
  let lines = String.split_on_char '\n' (String.trim csv) in
  (match lines with
  | header :: rows ->
      Alcotest.(check string)
        "header covers the full space"
        "iteration,a,b,c,performance" header;
      Alcotest.(check bool) "has rows" true (rows <> []);
      List.iter
        (fun row ->
          match String.split_on_char ',' row with
          | [ _; _; b; c; _ ] ->
              (* b and c were frozen at their defaults. *)
              Alcotest.(check string) "b pinned" "5" b;
              Alcotest.(check string) "c pinned" "5" c
          | _ -> Alcotest.fail ("bad row arity: " ^ row))
        rows
  | [] -> Alcotest.fail "empty csv")

(* ------------------------------------------------------------------ *)
(* Trace contexts, exemplars, and the flight recorder *)

module Flight = Harmony_telemetry.Flight

let qcheck_seed = [| 0x5eed; 16 |]

let to_alcotest t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make qcheck_seed) t

let is_hex16 s =
  String.length s = 16
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
       s

let test_ctx_ids_deterministic () =
  let c = Telemetry.Ctx.root ~client:"alpha" ~seq:3 in
  let c' = Telemetry.Ctx.root ~client:"alpha" ~seq:3 in
  Alcotest.(check string)
    "same inputs, same trace id"
    (Telemetry.Ctx.trace_id c) (Telemetry.Ctx.trace_id c');
  Alcotest.(check bool) "trace id is 16 hex chars" true
    (is_hex16 (Telemetry.Ctx.trace_id c));
  Alcotest.(check string)
    "root span id is the trace id"
    (Telemetry.Ctx.trace_id c) (Telemetry.Ctx.span_id c);
  Alcotest.(check string) "root has no parent" "" (Telemetry.Ctx.parent_id c);
  Alcotest.(check bool) "seq distinguishes traces" true
    (not
       (String.equal
          (Telemetry.Ctx.trace_id c)
          (Telemetry.Ctx.trace_id (Telemetry.Ctx.root ~client:"alpha" ~seq:4))));
  Alcotest.(check bool) "client distinguishes traces" true
    (not
       (String.equal
          (Telemetry.Ctx.trace_id c)
          (Telemetry.Ctx.trace_id (Telemetry.Ctx.root ~client:"bravo" ~seq:3))));
  let k = Telemetry.Ctx.child c "server.search" in
  Alcotest.(check string)
    "child keeps the trace id"
    (Telemetry.Ctx.trace_id c) (Telemetry.Ctx.trace_id k);
  Alcotest.(check string)
    "child's parent is the root span"
    (Telemetry.Ctx.span_id c) (Telemetry.Ctx.parent_id k);
  Alcotest.(check bool) "child span id is fresh" true
    (not (String.equal (Telemetry.Ctx.span_id k) (Telemetry.Ctx.span_id c)));
  Alcotest.(check string)
    "child is deterministic"
    (Telemetry.Ctx.span_id k)
    (Telemetry.Ctx.span_id (Telemetry.Ctx.child c "server.search"));
  Alcotest.(check bool) "indexed children are distinct" true
    (not
       (String.equal
          (Telemetry.Ctx.span_id (Telemetry.Ctx.child_i c "measure" 0))
          (Telemetry.Ctx.span_id (Telemetry.Ctx.child_i c "measure" 1))));
  (* args carry the correlation triple: parent only on children. *)
  let keys ctx = List.map fst (Telemetry.Ctx.args ctx) in
  Alcotest.(check (list string))
    "root args" [ "trace_id"; "span_id" ] (keys c);
  Alcotest.(check (list string))
    "child args"
    [ "trace_id"; "span_id"; "parent_id" ]
    (keys k)

let test_exemplars_recorded_and_merged () =
  let bounds = [| 1.0; 5.0; 10.0 |] in
  let a = Telemetry.create () in
  let b = Telemetry.create () in
  Telemetry.observe a ~bounds ~exemplar:"aaaa" "h" 2.0;
  Telemetry.observe a ~bounds ~exemplar:"cccc" "h" 3.0;
  Telemetry.observe b ~bounds ~exemplar:"bbbb" "h" 7.0;
  (match Telemetry.exemplars a "h" with
  | [ { Telemetry.ex_bound; ex_trace_id; ex_val } ] ->
      Alcotest.(check (float 1e-9)) "bucket bound" 5.0 ex_bound;
      Alcotest.(check string) "last observation wins the bucket" "cccc"
        ex_trace_id;
      Alcotest.(check (float 1e-9)) "observed value kept" 3.0 ex_val
  | l ->
      Alcotest.fail
        (Printf.sprintf "expected one bucket exemplar, got %d" (List.length l)));
  (* Merging copies exemplars along with the bucket counts. *)
  let m = Telemetry.merged [ a; b ] in
  let bucket_of id =
    List.find_opt
      (fun e -> String.equal e.Telemetry.ex_trace_id id)
      (Telemetry.exemplars m "h")
  in
  Alcotest.(check bool) "merged keeps a's bucket exemplar" true
    (Option.is_some (bucket_of "cccc"));
  Alcotest.(check bool) "merged keeps b's bucket exemplar" true
    (Option.is_some (bucket_of "bbbb"));
  (* And the Prometheus text renders OpenMetrics exemplar syntax. *)
  let prom = Export.prometheus m in
  Alcotest.(check bool) "prometheus exemplar syntax" true
    (let affix = {|# {trace_id="bbbb"}|} in
     let n = String.length affix and len = String.length prom in
     let rec go i =
       i + n <= len && (String.equal (String.sub prom i n) affix || go (i + 1))
     in
     go 0)

let test_flight_mirrors_metrics_only_handle () =
  let flight = Flight.create ~capacity:8 in
  let t = Telemetry.create ~record_events:false ~flight () in
  let ctx = Telemetry.Ctx.root ~client:"alpha" ~seq:1 in
  Telemetry.span t ~args:(Telemetry.Ctx.args ctx) "server.handle" (fun () -> ());
  Alcotest.(check int) "no events retained by the handle" 0
    (List.length (Telemetry.events t));
  (* The logical clock still advanced — metrics-only handles tick
     identically to recording ones. *)
  Alcotest.(check int) "clock ticked" 2 (Telemetry.event_count t);
  match Flight.entries flight with
  | [ b; e ] ->
      Alcotest.(check string) "begin mirrored" "server.handle" b.Flight.e_name;
      Alcotest.(check string)
        "trace id captured" (Telemetry.Ctx.trace_id ctx) b.Flight.e_trace;
      Alcotest.(check bool) "end mirrored" true
        (match e.Flight.e_kind with
        | Flight.End -> true
        | Flight.Begin | Flight.Instant -> false)
  | l ->
      Alcotest.fail
        (Printf.sprintf "expected 2 mirrored events, got %d" (List.length l))

(* The ring against the obvious reference: the last min(n, capacity)
   events, oldest first, at every (capacity, n) — including wraparound
   several times over. *)
let flight_wraparound_qcheck =
  QCheck2.Test.make ~count:200 ~name:"flight ring keeps the newest events"
    QCheck2.Gen.(pair (int_range 1 20) (int_range 0 200))
    (fun (capacity, n) ->
      let f = Flight.create ~capacity in
      for i = 0 to n - 1 do
        Flight.record f ~kind:Flight.Instant
          ~name:(Printf.sprintf "e%d" i)
          ~ts:(float_of_int i) ~trace:""
      done;
      let kept = min n capacity in
      let expected =
        List.init kept (fun j -> Printf.sprintf "e%d" (n - kept + j))
      in
      Flight.total f = n
      && List.map (fun e -> e.Flight.e_name) (Flight.entries f) = expected)

let suite =
  [
    ("span nesting and ordering", `Quick, test_span_nesting);
    ("span closes on exception", `Quick, test_span_end_on_exception);
    ("injected clock", `Quick, test_injected_clock);
    ("off handle is a no-op", `Quick, test_off_is_noop);
    ("metrics registry", `Quick, test_registry);
    ("declare_histogram pins bounds", `Quick, test_declare_histogram);
    ("record_events:false keeps metrics only", `Quick, test_record_events_off);
    ("quantile is a conservative upper bound", `Quick, test_quantile);
    ("merged aggregates registries", `Quick, test_merged);
    ("jsonl round-trips through Summary", `Quick, test_jsonl_roundtrip);
    ("summary rejects malformed lines", `Quick, test_summary_rejects_garbage);
    ("chrome export is valid trace JSON", `Quick, test_chrome_valid);
    ("prometheus text grammar", `Quick, test_prometheus_grammar);
    ("format selection", `Quick, test_format_selection);
    ( "tune is byte-identical with telemetry on",
      `Quick,
      test_tune_identical_with_telemetry );
    ( "seeded trace is reproducible",
      `Quick,
      test_seeded_run_trace_is_reproducible );
    ("whole-stack spans present", `Quick, test_session_spans_present);
    ("memo stats are registry views", `Quick, test_memo_counters_are_the_registry);
    ( "measure summary is a registry view",
      `Quick,
      test_measure_counters_are_the_registry );
    ("trace csv covers the full space", `Quick, test_trace_csv_full_space);
    ("ctx ids deterministic", `Quick, test_ctx_ids_deterministic);
    ( "exemplars recorded and merged",
      `Quick,
      test_exemplars_recorded_and_merged );
    ( "flight mirrors a metrics-only handle",
      `Quick,
      test_flight_mirrors_metrics_only_handle );
    to_alcotest flight_wraparound_qcheck;
  ]
