(* harmony_lint: per-rule fixtures (known-bad triggers, known-good
   passes), suppression via inline allow-comments and the allowlist
   file, output shape, and a self-check that the shipped tree is
   lint-clean. *)

let kept ?allowlist ~path src =
  (Lint_driver.lint_source ?allowlist ~path src).Lint_driver.kept

let suppressed ?allowlist ~path src =
  (Lint_driver.lint_source ?allowlist ~path src).Lint_driver.suppressed

let rules_of diags = List.map (fun d -> d.Lint_diag.rule) diags

let check_rules msg expected ?allowlist ~path src =
  Alcotest.(check (list string)) msg expected (rules_of (kept ?allowlist ~path src))

(* ------------------------------------------------------------------ *)
(* D1 — ambient nondeterminism *)

let d1_flags_global_random () =
  check_rules "Random.int flagged" [ "D1" ] ~path:"lib/core/x.ml"
    "let f () = Random.int 10";
  check_rules "Random.self_init flagged" [ "D1" ] ~path:"lib/core/x.ml"
    "let f () = Random.self_init ()";
  check_rules "Sys.time flagged" [ "D1" ] ~path:"lib/objective/x.ml"
    "let f () = Sys.time ()";
  check_rules "Unix.gettimeofday flagged" [ "D1" ] ~path:"lib/des/x.ml"
    "let f () = Unix.gettimeofday ()"

let d1_allows_seeded_state () =
  check_rules "Random.State is sanctioned" [] ~path:"lib/numerics/rng.ml"
    "let f st = Random.State.float st 1.0";
  check_rules "make_self_init still banned" [ "D1" ]
    ~path:"lib/numerics/rng.ml" "let f () = Random.State.make_self_init ()"

let d1_scoped_to_lib () =
  check_rules "bin/ may read the clock" [] ~path:"bin/harmony_cli.ml"
    "let f () = Sys.time ()"

(* ------------------------------------------------------------------ *)
(* D2 — module-toplevel mutable state *)

let d2_flags_toplevel_state () =
  check_rules "toplevel ref flagged" [ "D2" ] ~path:"lib/core/x.ml"
    "let counter = ref 0";
  check_rules "toplevel Hashtbl flagged" [ "D2" ] ~path:"lib/core/x.ml"
    "let cache = Hashtbl.create 16";
  check_rules "nested module state flagged" [ "D2" ] ~path:"lib/core/x.ml"
    "module M = struct let cache = ref [] end"

let d2_allows_local_state () =
  check_rules "function-local ref is fine" [] ~path:"lib/core/x.ml"
    "let f () = let c = ref 0 in incr c; !c";
  check_rules "toplevel immutable is fine" [] ~path:"lib/core/x.ml"
    "let default_budget = 100"

(* ------------------------------------------------------------------ *)
(* N1 — polymorphic comparison at float type *)

let n1_flags_poly_compare () =
  check_rules "bare compare flagged" [ "N1" ] ~path:"lib/core/x.ml"
    "let f xs = List.sort compare xs";
  check_rules "compare applied to floats flagged" [ "N1" ]
    ~path:"lib/core/x.ml" "let f a b = compare (a *. 2.0) b";
  check_rules "float equality flagged" [ "N1" ] ~path:"lib/core/x.ml"
    "let f a = a = 0.0";
  check_rules "float <> flagged" [ "N1" ] ~path:"lib/numerics/x.ml"
    "let f a = a <> 1.5";
  check_rules "min on float flagged" [ "N1" ] ~path:"lib/core/x.ml"
    "let f a = min a 1.0";
  check_rules "max on float expr flagged" [ "N1" ] ~path:"lib/core/x.ml"
    "let f a b = max a (b /. 2.0)";
  check_rules "nan equality flagged" [ "N1" ] ~path:"lib/core/x.ml"
    "let f x = x = nan"

let n1_allows_typed_comparison () =
  check_rules "Float.compare is the fix" [] ~path:"lib/core/x.ml"
    "let f xs = List.sort Float.compare xs";
  check_rules "Int.compare is fine" [] ~path:"lib/core/x.ml"
    "let f xs = List.sort Int.compare xs";
  check_rules "int equality untouched" [] ~path:"lib/core/x.ml"
    "let f a = a = 0";
  check_rules "string equality untouched" [] ~path:"lib/core/x.ml"
    {|let f a = a = "label"|};
  check_rules "Float.min is fine" [] ~path:"lib/core/x.ml"
    "let f a = Float.min a 1.0";
  check_rules "IEEE ordering guard left alone" [] ~path:"lib/core/x.ml"
    "let f a = a <= 0.0"

(* ------------------------------------------------------------------ *)
(* T1 — raising stdlib partials *)

let t1_flags_partials () =
  check_rules "List.hd flagged" [ "T1" ] ~path:"lib/core/x.ml"
    "let f xs = List.hd xs";
  check_rules "Option.get flagged" [ "T1" ] ~path:"lib/core/x.ml"
    "let f o = Option.get o";
  check_rules "Hashtbl.find flagged" [ "T1" ] ~path:"lib/core/x.ml"
    "let f h k = Hashtbl.find h k";
  check_rules "List.assoc flagged" [ "T1" ] ~path:"lib/core/x.ml"
    "let f k xs = List.assoc k xs";
  check_rules "Queue.pop flagged" [ "T1" ] ~path:"lib/des/x.ml"
    "let f q = Queue.pop q";
  (* The durability layer is inside T1's scope: a raising partial on the
     recovery path would defeat "corrupt input never raises". *)
  check_rules "lib/persist is covered" [ "T1" ] ~path:"lib/persist/x.ml"
    "let f xs = List.hd xs"

let t1_allows_opt_variants () =
  check_rules "_opt variants are the fix" [] ~path:"lib/core/x.ml"
    "let f h k xs o = (Hashtbl.find_opt h k, List.nth_opt xs 0, List.find_opt o xs)"

(* ------------------------------------------------------------------ *)
(* T2 — totality of message paths *)

let t2_flags_partiality_in_handlers () =
  check_rules "assert false in server flagged" [ "T2" ]
    ~path:"lib/core/server.ml" "let f () = assert false";
  check_rules "failwith in session flagged" [ "T2" ]
    ~path:"lib/core/session.ml" {|let f () = failwith "boom"|};
  check_rules "raise Not_found in server flagged" [ "T2" ]
    ~path:"lib/core/server.ml" "let f () = raise Not_found";
  check_rules "assert false in the sharded service flagged" [ "T2" ]
    ~path:"lib/service/service.ml" "let f () = assert false";
  check_rules "failwith in the sharded service flagged" [ "T2" ]
    ~path:"lib/service/service.ml" {|let f () = failwith "boom"|};
  check_rules "exit in the sharded service flagged" [ "T2" ]
    ~path:"lib/service/service.ml" "let f () = exit 1";
  check_rules "failwith in the admission layer flagged" [ "T2" ]
    ~path:"lib/service/admission.ml" {|let f () = failwith "shed"|};
  check_rules "raise Not_found in the admission layer flagged" [ "T2" ]
    ~path:"lib/service/admission.ml" "let f () = raise Not_found"

let t2_scoped_to_message_paths () =
  check_rules "assert false elsewhere is not T2's business" []
    ~path:"lib/parallel/pool.ml" "let f () = assert false";
  check_rules "ordinary asserts stay legal" [] ~path:"lib/core/server.ml"
    "let f x = assert (x > 0)";
  check_rules "invalid_arg at service API edges stays legal" []
    ~path:"lib/service/service.ml"
    {|let f shards = if shards < 1 then invalid_arg "shards" else shards|};
  check_rules "invalid_arg at admission config edges stays legal" []
    ~path:"lib/service/admission.ml"
    {|let f rate = if rate < 0 then invalid_arg "rate" else rate|}

(* ------------------------------------------------------------------ *)
(* P1 — printing in hot paths *)

let p1_flags_printing_in_hot_paths () =
  check_rules "Printf.printf in objective flagged" [ "P1" ]
    ~path:"lib/objective/objective.ml" {|let f () = Printf.printf "x"|};
  check_rules "print_endline in simplex flagged" [ "P1" ]
    ~path:"lib/core/simplex.ml" {|let f () = print_endline "x"|};
  check_rules "Format.printf in pool flagged" [ "P1" ]
    ~path:"lib/parallel/pool.ml" {|let f () = Format.printf "x"|};
  (* The telemetry layer is the sanctioned output path, so it is held
     to the same standard: a tracer that printed would smuggle the
     very side effect it exists to replace. *)
  check_rules "print in lib/telemetry flagged" [ "P1" ]
    ~path:"lib/telemetry/export.ml" {|let f () = print_string "x"|};
  check_rules "print in lib/persist flagged" [ "P1" ]
    ~path:"lib/persist/persist.ml" {|let f () = Printf.printf "x"|};
  check_rules "print in instrumented server flagged" [ "P1" ]
    ~path:"lib/core/server.ml" {|let f () = print_endline "x"|};
  check_rules "print in instrumented session flagged" [ "P1" ]
    ~path:"lib/core/session.ml" {|let f () = Format.printf "x"|};
  check_rules "print in instrumented sensitivity flagged" [ "P1" ]
    ~path:"lib/core/sensitivity.ml" {|let f () = print_int 3|};
  check_rules "print in instrumented analyzer flagged" [ "P1" ]
    ~path:"lib/core/analyzer.ml" {|let f () = prerr_endline "x"|};
  (* The trace-analyzer core is pure (renderers return strings); only
     the harmony_trace CLI executable owns stdout. *)
  check_rules "print in trace-analyzer core flagged" [ "P1" ]
    ~path:"tools/trace/trace_core.ml" {|let f () = print_string "x"|};
  check_rules "the trace CLI exe may print" []
    ~path:"tools/trace/harmony_trace.ml" {|let f () = print_string "x"|}

let p1_allows_pure_formatting () =
  check_rules "sprintf is pure" [] ~path:"lib/objective/objective.ml"
    {|let f i = Printf.sprintf "p%d" i|};
  check_rules "pp over explicit formatter is fine" []
    ~path:"lib/objective/objective.ml"
    {|let pp ppf x = Format.fprintf ppf "%d" x|};
  check_rules "cold modules may print" [] ~path:"lib/experiments/report.ml"
    {|let f () = Format.printf "table"|}

(* ------------------------------------------------------------------ *)
(* Suppression *)

let allow_comment_same_line () =
  let src = "let f xs = List.hd xs (* lint: allow T1 — head is guarded *)" in
  Alcotest.(check (list string)) "kept empty" [] (rules_of (kept ~path:"lib/core/x.ml" src));
  Alcotest.(check (list string))
    "waiver recorded" [ "T1" ]
    (rules_of (suppressed ~path:"lib/core/x.ml" src))

let allow_comment_previous_line () =
  let src = "(* lint: allow T1 *)\nlet f xs = List.hd xs" in
  check_rules "previous-line comment waives" [] ~path:"lib/core/x.ml" src

let allow_comment_wrong_rule () =
  let src = "let f xs = List.hd xs (* lint: allow N1 *)" in
  check_rules "wrong rule id does not waive" [ "T1" ] ~path:"lib/core/x.ml" src

let allow_comment_multiple_rules () =
  let src = "(* lint: allow T1 N1 *)\nlet f xs = List.hd (List.sort compare xs)" in
  check_rules "one comment, several rules" [] ~path:"lib/core/x.ml" src

(* Unified semantics (shared with harmony_sem): a same-line waiver
   covers exactly its own line; comment-only waiver lines accumulate
   and all land on the next code line. *)
let allow_comment_does_not_bleed () =
  let src =
    "let f xs = List.hd xs (* lint: allow T1 *)\nlet g xs = List.hd xs"
  in
  check_rules "same-line waiver stops at its line" [ "T1" ]
    ~path:"lib/core/x.ml" src

let allow_comment_stacked_lines () =
  let src =
    "(* lint: allow T1 — head is guarded *)\n\
     (* lint: allow N1 — ints compared *)\n\
     let f xs = List.hd (List.sort compare xs)"
  in
  check_rules "stacked comment-only waivers all apply" [] ~path:"lib/core/x.ml"
    src;
  check_rules "stack is consumed by the first code line" [ "T1" ]
    ~path:"lib/core/x.ml" (src ^ "\nlet g xs = List.hd xs")

let allowlist_waives_by_path () =
  let allowlist =
    match Lint_allow.allowlist_of_string "lib/core/x.ml T1  # legacy" with
    | Ok a -> a
    | Error msg -> Alcotest.fail msg
  in
  check_rules "allowlisted file passes" [] ~allowlist ~path:"lib/core/x.ml"
    "let f xs = List.hd xs";
  check_rules "other files still flagged" [ "T1" ] ~allowlist
    ~path:"lib/core/y.ml" "let f xs = List.hd xs";
  check_rules "other rules still flagged" [ "T1"; "N1" ] ~allowlist
    ~path:"lib/core/y.ml" "let f xs = List.hd (List.sort compare xs)"

let allowlist_rejects_garbage () =
  match Lint_allow.allowlist_of_string "one two three four" with
  | Ok _ -> Alcotest.fail "malformed allowlist accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Engine behaviour *)

let diagnostics_carry_positions () =
  match kept ~path:"lib/core/x.ml" "let a = 1\nlet f xs = List.hd xs" with
  | [ d ] ->
      Alcotest.(check string) "file" "lib/core/x.ml" d.Lint_diag.file;
      Alcotest.(check int) "line" 2 d.Lint_diag.line;
      Alcotest.(check int) "col" 11 d.Lint_diag.col
  | ds -> Alcotest.fail (Printf.sprintf "expected 1 diag, got %d" (List.length ds))

let diagnostics_are_sorted () =
  let src = "let f xs = List.hd xs\nlet g a = a = 0.0\nlet h o = Option.get o" in
  let lines = List.map (fun d -> d.Lint_diag.line) (kept ~path:"lib/core/x.ml" src) in
  Alcotest.(check (list int)) "report in source order" [ 1; 2; 3 ] lines

let parse_errors_are_findings () =
  match kept ~path:"lib/core/x.ml" "let f = (" with
  | [ d ] -> Alcotest.(check string) "parse rule" "parse" d.Lint_diag.rule
  | _ -> Alcotest.fail "expected exactly one parse finding"

let json_output_shape () =
  let d =
    Lint_diag.make ~rule:"N1" ~severity:Lint_diag.Error
      ~loc:Location.none {|bad "quote"|}
  in
  let json = Lint_diag.to_json d in
  List.iter
    (fun needle ->
      if
        not
          (List.exists
             (fun i ->
               i + String.length needle <= String.length json
               && String.sub json i (String.length needle) = needle)
             (List.init (String.length json) Fun.id))
      then Alcotest.fail (Printf.sprintf "missing %s in %s" needle json))
    [ {|"rule":"N1"|}; {|"severity":"error"|}; {|\"quote\"|} ]

let failure_semantics () =
  let result = Lint_driver.lint_source ~path:"lib/core/x.ml" "let f xs = List.hd xs" in
  Alcotest.(check bool) "errors fail" true (Lint_driver.failed result);
  let clean = Lint_driver.lint_source ~path:"lib/core/x.ml" "let f x = x + 1" in
  Alcotest.(check bool) "clean passes" false (Lint_driver.failed clean)

let rule_registry_well_formed () =
  Alcotest.(check int) "six rules" 6 (List.length Lint_rules.all);
  let ids = List.map (fun r -> r.Lint_rules.id) Lint_rules.all in
  Alcotest.(check (list string))
    "ids unique and stable"
    [ "D1"; "D2"; "N1"; "T1"; "T2"; "P1" ]
    ids

(* ------------------------------------------------------------------ *)
(* Self-check: the shipped tree is lint-clean.  The test runs in the
   dune sandbox next to the copied sources (declared as deps in
   test/dune), so the repo root is the parent directory. *)

let tree_is_lint_clean () =
  let root p = Filename.concat ".." p in
  let paths = List.filter Sys.file_exists [ root "lib"; root "bin"; root "bench" ] in
  if paths = [] then Alcotest.skip ();
  let allowlist =
    if Sys.file_exists (root "tools/lint/allowlist") then
      match Lint_allow.load_allowlist (root "tools/lint/allowlist") with
      | Ok a -> a
      | Error msg -> Alcotest.fail msg
    else Lint_allow.empty_allowlist
  in
  let result = Lint_driver.lint_paths ~allowlist paths in
  (match result.Lint_driver.kept with
  | [] -> ()
  | ds ->
      let buf = Buffer.create 256 in
      List.iter
        (fun d -> Buffer.add_string buf (Format.asprintf "%a\n" Lint_diag.pp_text d))
        ds;
      Alcotest.fail ("tree has unwaived lint findings:\n" ^ Buffer.contents buf));
  Alcotest.(check bool) "lint exit would be 0" false (Lint_driver.failed result)

let suite =
  [
    ("d1 flags global random/clock", `Quick, d1_flags_global_random);
    ("d1 allows seeded state", `Quick, d1_allows_seeded_state);
    ("d1 scoped to lib", `Quick, d1_scoped_to_lib);
    ("d2 flags toplevel state", `Quick, d2_flags_toplevel_state);
    ("d2 allows local state", `Quick, d2_allows_local_state);
    ("n1 flags poly compare", `Quick, n1_flags_poly_compare);
    ("n1 allows typed comparison", `Quick, n1_allows_typed_comparison);
    ("t1 flags partials", `Quick, t1_flags_partials);
    ("t1 allows opt variants", `Quick, t1_allows_opt_variants);
    ("t2 flags handler partiality", `Quick, t2_flags_partiality_in_handlers);
    ("t2 scoped to message paths", `Quick, t2_scoped_to_message_paths);
    ("p1 flags hot-path printing", `Quick, p1_flags_printing_in_hot_paths);
    ("p1 allows pure formatting", `Quick, p1_allows_pure_formatting);
    ("allow comment same line", `Quick, allow_comment_same_line);
    ("allow comment previous line", `Quick, allow_comment_previous_line);
    ("allow comment wrong rule", `Quick, allow_comment_wrong_rule);
    ("allow comment multiple rules", `Quick, allow_comment_multiple_rules);
    ("allow comment does not bleed", `Quick, allow_comment_does_not_bleed);
    ("allow comment stacked lines", `Quick, allow_comment_stacked_lines);
    ("allowlist waives by path", `Quick, allowlist_waives_by_path);
    ("allowlist rejects garbage", `Quick, allowlist_rejects_garbage);
    ("diagnostics carry positions", `Quick, diagnostics_carry_positions);
    ("diagnostics are sorted", `Quick, diagnostics_are_sorted);
    ("parse errors are findings", `Quick, parse_errors_are_findings);
    ("json output shape", `Quick, json_output_shape);
    ("failure semantics", `Quick, failure_semantics);
    ("rule registry well-formed", `Quick, rule_registry_well_formed);
    ("tree is lint-clean", `Quick, tree_is_lint_clean);
  ]
