open Harmony
open Harmony_objective
module Param = Harmony_param.Param
module Space = Harmony_param.Space
module Generator = Harmony_datagen.Generator
module Pool = Harmony_parallel.Pool

let space =
  Space.create [ Param.int_range ~name:"x" ~lo:0 ~hi:10 ~default:5 () ]

(* An objective whose fault schedule is an explicit per-configuration
   script: [schedule attempt] decides what physical attempt number
   [attempt] (0-based, per configuration) does. *)
let scripted ?(noisy = false) schedule =
  let attempts : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let base =
    Objective.create ~space ~direction:Objective.Higher_is_better (fun c ->
        let key = Space.config_key c in
        let n = Option.value (Hashtbl.find_opt attempts key) ~default:0 in
        Hashtbl.replace attempts key (n + 1);
        schedule n c)
  in
  { base with Objective.noisy }

let transient_then n value =
  scripted (fun attempt _ ->
      if attempt < n then raise (Objective.Measurement_failed Objective.Transient)
      else value)

(* ------------------------------------------------------------------ *)
(* Retry / backoff on the simulated clock                              *)

let test_backoff_schedule () =
  let obj = transient_then 3 42.0 in
  let clock = Measure.Clock.create () in
  (match Measure.measure ~clock obj [| 5.0 |] with
  | Ok v -> Alcotest.(check (float 1e-9)) "value after retries" 42.0 v
  | Error _ -> Alcotest.fail "expected success after three transients");
  (* Backoff 10, 20, 40 before attempts 2..4: 70 simulated ms, no wall
     sleeps anywhere. *)
  Alcotest.(check (float 1e-9)) "simulated backoff" 70.0
    (Measure.Clock.now clock)

let test_backoff_cap () =
  let obj = transient_then 5 7.0 in
  let policy = { Measure.default_policy with Measure.max_attempts = 6 } in
  let clock = Measure.Clock.create () in
  (match Measure.measure ~policy ~clock obj [| 5.0 |] with
  | Ok v -> Alcotest.(check (float 1e-9)) "value" 7.0 v
  | Error _ -> Alcotest.fail "expected success");
  (* 10 + 20 + 40 + 80 (capped) + 80 (capped) *)
  Alcotest.(check (float 1e-9)) "capped schedule" 230.0
    (Measure.Clock.now clock)

let test_timeout_retried () =
  let obj =
    scripted (fun attempt _ -> if attempt = 0 then Objective.timed_out else 9.0)
  in
  match Measure.measure obj [| 5.0 |] with
  | Ok v -> Alcotest.(check (float 1e-9)) "value after timeout" 9.0 v
  | Error _ -> Alcotest.fail "expected success after one timeout"

let test_persistent_gives_up_immediately () =
  let obj =
    scripted (fun _ _ -> raise (Objective.Measurement_failed Objective.Persistent))
  in
  match Measure.measure obj [| 5.0 |] with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error f ->
      Alcotest.(check int) "single attempt" 1 f.Measure.attempts;
      Alcotest.(check bool) "persistent" true
        (f.Measure.last_fault = Objective.Persistent)

let test_give_up_after_budget () =
  let obj =
    scripted (fun _ _ -> raise (Objective.Measurement_failed Objective.Transient))
  in
  match Measure.measure obj [| 5.0 |] with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error f ->
      Alcotest.(check int) "all attempts spent"
        Measure.default_policy.Measure.max_attempts f.Measure.attempts;
      Alcotest.(check bool) "transient" true
        (f.Measure.last_fault = Objective.Transient)

(* ------------------------------------------------------------------ *)
(* Median-of-k and MAD outlier rejection                               *)

let test_outlier_rejected () =
  (* Noisy objective: third reading corrupted by x8.  The median-of-3
     plus confirmation round must report the honest value. *)
  let obj = scripted ~noisy:true (fun attempt _ -> if attempt = 2 then 800.0 else 100.0) in
  match Measure.measure obj [| 5.0 |] with
  | Ok v -> Alcotest.(check (float 1e-9)) "honest median" 100.0 v
  | Error _ -> Alcotest.fail "expected success"

let test_outlier_majority_round_one () =
  (* Two of the first three readings corrupted: a single round's median
     would be fooled; the confirmation round votes the corruption out. *)
  let obj =
    scripted ~noisy:true (fun attempt _ ->
        if attempt = 1 || attempt = 2 then 800.0 else 100.0)
  in
  match Measure.measure obj [| 5.0 |] with
  | Ok v -> Alcotest.(check (float 1e-9)) "honest after confirmation" 100.0 v
  | Error _ -> Alcotest.fail "expected success"

let test_noisy_readings_survive_mad () =
  (* Honest measurement noise must not be rejected: readings within a
     few percent of each other pass the MAD filter and the median is
     reported. *)
  let readings = [| 99.0; 100.0; 101.0 |] in
  let obj = scripted ~noisy:true (fun attempt _ -> readings.(attempt mod 3)) in
  match Measure.measure obj [| 5.0 |] with
  | Ok v -> Alcotest.(check (float 1e-9)) "median of noisy" 100.0 v
  | Error _ -> Alcotest.fail "expected success"

(* ------------------------------------------------------------------ *)
(* The robust (total) objective                                        *)

let test_robust_penalty_and_summary () =
  let obj =
    scripted (fun _ _ -> raise (Objective.Measurement_failed Objective.Transient))
  in
  let robust, handle = Measure.robust obj in
  let v = robust.Objective.eval [| 5.0 |] in
  Alcotest.(check (float 1e-3)) "worst-case penalty"
    (Measure.penalty_for Objective.Higher_is_better)
    v;
  let s = Measure.summary handle in
  Alcotest.(check int) "one measurement" 1 s.Measure.measurements;
  Alcotest.(check int) "one give-up" 1 s.Measure.give_ups;
  Alcotest.(check int) "attempts" 4 s.Measure.attempts;
  Alcotest.(check int) "retries" 3 s.Measure.retries;
  Alcotest.(check int) "faults" 4 s.Measure.faults;
  Alcotest.(check (float 1e-9)) "backoff accounted" 70.0 s.Measure.backoff_ms

let test_robust_penalty_direction () =
  Alcotest.(check bool) "higher penalized low" true
    (Measure.penalty_for Objective.Higher_is_better < 0.0);
  Alcotest.(check bool) "lower penalized high" true
    (Measure.penalty_for Objective.Lower_is_better > 0.0)

(* The satellite fix: under retries, every physical re-measurement
   counts as a miss, and faults/retries surface in the stats record. *)
let test_stats_accounting_under_retries () =
  let base_count = ref 0 in
  let attempts : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let faulty =
    Objective.create ~space ~direction:Objective.Higher_is_better (fun c ->
        let key = Space.config_key c in
        let n = Option.value (Hashtbl.find_opt attempts key) ~default:0 in
        Hashtbl.replace attempts key (n + 1);
        if n = 0 then raise (Objective.Measurement_failed Objective.Transient);
        incr base_count;
        c.(0))
  in
  let robust, _ = Measure.robust faulty in
  let cached = Objective.cached ~freeze_noise:true robust in
  Alcotest.(check (float 1e-9)) "first eval" 3.0 (cached.Objective.eval [| 3.0 |]);
  Alcotest.(check (float 1e-9)) "memo hit" 3.0 (cached.Objective.eval [| 3.0 |]);
  Alcotest.(check int) "base measured once" 1 !base_count;
  match Objective.stats cached with
  | None -> Alcotest.fail "expected stats"
  | Some s ->
      Alcotest.(check int) "hits" 1 s.Objective.hits;
      (* The one memo miss physically cost two measurements. *)
      Alcotest.(check int) "misses count physical attempts" 2 s.Objective.misses;
      Alcotest.(check int) "evals" 3 s.Objective.evals;
      Alcotest.(check int) "faults" 1 s.Objective.faults;
      Alcotest.(check int) "retries" 1 s.Objective.retries

let test_with_faults_deterministic_replay () =
  let make () =
    Objective.with_faults ~rates:(Objective.fault_profile 0.3) ~seed:17
      (Objective.create ~space ~direction:Objective.Higher_is_better (fun c ->
           c.(0)))
  in
  let trace obj =
    List.init 40 (fun i ->
        let c = [| float_of_int (i mod 11) |] in
        match obj.Objective.eval c with
        | v -> Printf.sprintf "%h" v
        | exception Objective.Measurement_failed k ->
            Objective.fault_to_string k)
  in
  Alcotest.(check (list string)) "same seed, same faults" (trace (make ()))
    (trace (make ()))

(* ------------------------------------------------------------------ *)
(* End-to-end: Session.tune under 20% transient faults                 *)

let tune_datagen ~faulty =
  let g = Generator.synthetic_webservice ~seed:11 () in
  let clean = Generator.objective g ~workload:Generator.shopping_mix in
  let objective, measure =
    if faulty then
      ( Objective.with_faults
          ~rates:{ Objective.no_faults with Objective.transient = 0.2 }
          ~seed:3 clean,
        Some Measure.default_policy )
    else (clean, None)
  in
  let options =
    { Tuner.default_options with Tuner.max_evaluations = 150;
      measure }
  in
  let session = Session.create ~objective ~options () in
  (Session.tune session, clean)

let test_session_converges_under_faults () =
  let clean_result, _ = tune_datagen ~faulty:false in
  let faulty_result, clean = tune_datagen ~faulty:true in
  let reference = clean_result.Session.outcome.Tuner.best_performance in
  (* Transients do not corrupt values, so the faulty run's best is a
     genuine measurement; it must be within 5% of the fault-free best. *)
  let deployed = clean.Objective.eval faulty_result.Session.full_best_config in
  Alcotest.(check bool)
    (Printf.sprintf "within 5%% of fault-free best (%.2f vs %.2f)" deployed
       reference)
    true
    (deployed >= 0.95 *. reference);
  Alcotest.(check bool) "faults were actually injected" true
    (faulty_result.Session.faults > 0);
  Alcotest.(check bool) "retries were spent" true
    (faulty_result.Session.retries > 0);
  Alcotest.(check bool) "clean run not degraded" false
    clean_result.Session.degraded

let test_session_degraded_flag () =
  (* Everything fails: the session must flag degradation rather than
     return a silently poisoned result. *)
  let broken =
    {
      (Objective.create ~space ~direction:Objective.Higher_is_better (fun _ ->
           raise (Objective.Measurement_failed Objective.Persistent)))
      with
      Objective.noisy = false;
    }
  in
  let options =
    { Tuner.default_options with Tuner.max_evaluations = 20;
      measure = Some Measure.default_policy }
  in
  let session = Session.create ~objective:broken ~options () in
  let r = Session.tune session in
  Alcotest.(check bool) "degraded" true r.Session.degraded;
  Alcotest.(check bool) "faults counted" true (r.Session.faults > 0)

(* The fault ablation arms are pool-parallel; the table must be
   byte-identical at any domain count. *)
let test_fault_arms_jobs_deterministic () =
  let arm rate =
    let g = Generator.synthetic_webservice ~seed:11 () in
    let clean = Generator.objective g ~workload:Generator.shopping_mix in
    let objective =
      Objective.with_faults ~rates:(Objective.fault_profile rate) ~seed:5 clean
    in
    let options =
      { Tuner.default_options with Tuner.max_evaluations = 60;
        measure = Some Measure.default_policy }
    in
    let o = Tuner.tune ~options objective in
    let s = Option.value o.Tuner.measurement ~default:Measure.no_summary in
    Printf.sprintf "%.3f/%d/%d/%d" o.Tuner.best_performance s.Measure.faults
      s.Measure.retries s.Measure.give_ups
  in
  let rates = [ 0.05; 0.1; 0.2; 0.4 ] in
  let run domains = Pool.with_pool ~domains (fun pool -> Pool.map pool arm rates) in
  Alcotest.(check (list string)) "jobs 1 = jobs 4" (run 1) (run 4)

(* ------------------------------------------------------------------ *)
(* Batch measurement                                                   *)

let batch_configs =
  [| [| 1.0 |]; [| 4.0 |]; [| 1.0 |]; [| 7.0 |]; [| 4.0 |]; [| 2.0 |] |]

(* One faults+robust+memo stack, fresh per run so no state is shared
   between the sequential and batched runs. *)
let robust_stack () =
  let faulty =
    Objective.with_faults ~rates:(Objective.fault_profile 0.3) ~seed:17
      (Objective.create ~space ~direction:Objective.Higher_is_better (fun c ->
           (c.(0) *. 2.0) +. 1.0))
  in
  let robust, _handle = Measure.robust faulty in
  Objective.cached ~freeze_noise:true robust

let test_robust_batch_identity () =
  (* The whole vetting stack, batched at 1 and 4 domains, must return
     the sequential fold's bytes — fault draws are keyed by
     (configuration, attempt), so fanning distinct configurations out
     across domains replays exactly the same faults. *)
  let expected = Array.map (robust_stack ()).Objective.eval batch_configs in
  List.iter
    (fun domains ->
      let got =
        Pool.with_pool ~domains (fun pool ->
            Objective.eval_batch ~pool (robust_stack ()) batch_configs)
      in
      Alcotest.(check (array int64))
        (Printf.sprintf "identical at %d domains" domains)
        (Array.map Int64.bits_of_float expected)
        (Array.map Int64.bits_of_float got))
    [ 1; 4 ]

let test_measure_batch_matches_sequential () =
  let make () = transient_then 2 42.0 in
  let verdict = function
    | Ok v -> Printf.sprintf "ok:%h" v
    | Error f -> Format.asprintf "error:%a" Measure.pp_failure f
  in
  let sequential =
    let obj = make () in
    let clock = Measure.Clock.create () in
    Array.map (fun c -> Measure.measure ~clock obj c) batch_configs
  in
  let batched ?pool () =
    let obj = make () in
    let clock = Measure.Clock.create () in
    Measure.measure_batch ?pool ~clock obj batch_configs
  in
  let check label got =
    Alcotest.(check (array string))
      label
      (Array.map verdict sequential)
      (Array.map verdict got)
  in
  check "no pool" (batched ());
  Pool.with_pool ~domains:4 (fun pool -> check "4 domains" (batched ~pool ()))

let test_measure_batch_failures_in_place () =
  (* A configuration that exhausts its retry budget reports its
     failure in its own slot without disturbing the others. *)
  let obj =
    scripted (fun _ c ->
        if Float.equal c.(0) 4.0 then
          raise (Objective.Measurement_failed Objective.Persistent)
        else c.(0))
  in
  let results = Measure.measure_batch obj batch_configs in
  Array.iteri
    (fun i r ->
      match (r, Float.equal batch_configs.(i).(0) 4.0) with
      | Error _, true -> ()
      | Ok v, false ->
          Alcotest.(check (float 1e-12)) "value" batch_configs.(i).(0) v
      | Ok _, true -> Alcotest.fail "expected failure for 4.0"
      | Error _, false -> Alcotest.fail "unexpected failure")
    results

let suite =
  [
    Alcotest.test_case "backoff schedule" `Quick test_backoff_schedule;
    Alcotest.test_case "backoff cap" `Quick test_backoff_cap;
    Alcotest.test_case "timeout retried" `Quick test_timeout_retried;
    Alcotest.test_case "persistent gives up" `Quick
      test_persistent_gives_up_immediately;
    Alcotest.test_case "give up after budget" `Quick test_give_up_after_budget;
    Alcotest.test_case "outlier rejected" `Quick test_outlier_rejected;
    Alcotest.test_case "outlier majority round one" `Quick
      test_outlier_majority_round_one;
    Alcotest.test_case "noisy readings survive" `Quick
      test_noisy_readings_survive_mad;
    Alcotest.test_case "robust penalty + summary" `Quick
      test_robust_penalty_and_summary;
    Alcotest.test_case "penalty direction" `Quick test_robust_penalty_direction;
    Alcotest.test_case "stats under retries" `Quick
      test_stats_accounting_under_retries;
    Alcotest.test_case "with_faults replay" `Quick
      test_with_faults_deterministic_replay;
    Alcotest.test_case "session converges under 20% faults" `Slow
      test_session_converges_under_faults;
    Alcotest.test_case "session degraded flag" `Quick test_session_degraded_flag;
    Alcotest.test_case "fault arms jobs-deterministic" `Slow
      test_fault_arms_jobs_deterministic;
    Alcotest.test_case "robust batch identity" `Quick test_robust_batch_identity;
    Alcotest.test_case "measure_batch matches sequential" `Quick
      test_measure_batch_matches_sequential;
    Alcotest.test_case "measure_batch failures in place" `Quick
      test_measure_batch_failures_in_place;
  ]
