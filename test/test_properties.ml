(* Property-based / fuzz suite (QCheck2 over Alcotest).

   Every test here is deterministic: QCheck draws from a fixed seed
   (set below) and nothing measures wall-clock time — the measurement
   pipeline's backoff runs on its simulated clock. *)

open Harmony
open Harmony_objective
module Param = Harmony_param.Param
module Space = Harmony_param.Space
module Rsl = Harmony_param.Rsl
module Gen = QCheck2.Gen

let seed = [| 0x5eed; 2004 |]
let to_alcotest t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make seed) t

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)

(* A random valid RSL program: every bundle's range is non-empty by
   construction (references only reach strictly earlier bundles, whose
   values are non-negative, and only widen the range upward). *)
let gen_bundles : Rsl.bundle list Gen.t =
  Gen.(
    let* n = int_range 1 5 in
    let rec build i acc =
      if i >= n then return (List.rev acc)
      else
        let* lo = int_range 0 5 in
        let* width = int_range 0 9 in
        let* step = int_range 1 3 in
        let* hi_expr =
          if i = 0 then return (Rsl.Const (lo + width))
          else
            let* use_ref = bool in
            if not use_ref then return (Rsl.Const (lo + width))
            else
              let* j = int_range 0 (i - 1) in
              return
                (Rsl.Add
                   (Rsl.Const (lo + width), Rsl.Ref (Printf.sprintf "B%d" j)))
        in
        build (i + 1)
          ({
             Rsl.name = Printf.sprintf "B%d" i;
             lo = Rsl.Const lo;
             hi = hi_expr;
             step = Rsl.Const step;
           }
          :: acc)
    in
    build 0 [])

let gen_spec = Gen.map Rsl.of_bundles gen_bundles

(* Arbitrary bytes, with NULs, newlines and protocol-ish prefixes mixed
   in so the interesting corners actually get visited. *)
let gen_raw_message : string Gen.t =
  Gen.(
    let any_bytes = string_size ~gen:char (int_bound 60) in
    let nasty =
      oneofl
        [
          "report failed"; "report  failed"; "report"; "report "; "reportfailed";
          "report nan"; "report inf"; "report -"; "report 1e309"; "query ";
          "register"; "register max"; "register max\n"; "register min\n{";
          "report\nfailed"; "report\000failed"; "\000"; "\n"; "";
          "register max\n{ harmonyBundle B { int {1 8 1} }}";
          "assign B=3"; "done"; "REPORT 4.5"; " query";
        ]
    in
    let stitched =
      let* a = any_bytes and* b = oneofl [ "\n"; "\000"; " " ] and* c = any_bytes in
      return (a ^ b ^ c)
    in
    oneof [ any_bytes; nasty; stitched ])

(* ------------------------------------------------------------------ *)
(* RSL                                                                 *)

let prop_rsl_roundtrip =
  QCheck2.Test.make ~name:"rsl parse-print-parse roundtrip" ~count:200 gen_spec
    (fun spec ->
      let printed = Rsl.to_string spec in
      let reparsed = Rsl.parse printed in
      String.equal printed (Rsl.to_string reparsed)
      && Rsl.names spec = Rsl.names reparsed)

let prop_rsl_repair_feasible =
  QCheck2.Test.make ~name:"rsl repair lands in the feasible set" ~count:200
    Gen.(
      let* spec = gen_spec in
      let* raw =
        array_size
          (return (List.length (Rsl.names spec)))
          (float_range (-20.0) 40.0)
      in
      return (spec, raw))
    (fun (spec, raw) ->
      let repaired = Rsl.repair spec raw in
      let ints = Array.map (fun x -> int_of_float (Float.round x)) repaired in
      Rsl.is_feasible spec ints)

(* ------------------------------------------------------------------ *)
(* Server protocol                                                     *)

let prop_parse_message_total =
  QCheck2.Test.make ~name:"parse_message never raises" ~count:500
    gen_raw_message (fun s ->
      match Server.parse_message s with Ok _ | Error _ -> true)

let prop_report_parse_roundtrip =
  QCheck2.Test.make ~name:"report <float> / report failed parse" ~count:200
    Gen.(float_range (-1e6) 1e6)
    (fun v ->
      let ok_float =
        match Server.parse_message (Printf.sprintf "report %.17g" v) with
        | Ok (Server.Report w) -> Float.abs (w -. v) <= 1e-9 *. Float.abs v
        | _ -> false
      in
      let ok_failed =
        match Server.parse_message "report failed" with
        | Ok Server.Report_failed -> true
        | _ -> false
      in
      ok_float && ok_failed)

(* Drive a server with a fuzzed message sequence after registering a
   random spec: every Assign it ever produces must be feasible. *)
type fuzz_msg = Fquery | Freport of float | Ffailed

let prop_assign_always_feasible =
  QCheck2.Test.make ~name:"every assign reply is feasible" ~count:100
    Gen.(
      let* spec = gen_spec in
      let* msgs =
        list_size (int_range 1 25)
          (oneof
             [
               return Fquery;
               map (fun v -> Freport v) (float_range (-100.0) 100.0);
               return Ffailed;
             ])
      in
      return (spec, msgs))
    (fun (spec, msgs) ->
      let server = Server.create ~max_report_failures:2 () in
      let feasible_assign = function
        | Server.Assign assignment ->
            let ints = Array.of_list (List.map snd assignment) in
            Rsl.is_feasible spec ints
        | Server.Done _ | Server.Rejected _ | Server.Stats _ -> true
      in
      let register =
        Server.handle server
          (Server.Register
             { spec = Rsl.to_string spec; direction = Server.Maximize })
      in
      feasible_assign register
      && List.for_all
           (fun m ->
             let msg =
               match m with
               | Fquery -> Server.Query
               | Freport v -> Server.Report v
               | Ffailed -> Server.Report_failed
             in
             feasible_assign (Server.handle server msg))
           msgs)

(* ------------------------------------------------------------------ *)
(* Estimator                                                           *)

(* On an exactly affine surface, triangulation from d+1 affinely
   independent vertices reproduces the surface everywhere. *)
let prop_estimator_affine_exact =
  QCheck2.Test.make ~name:"estimator exact on affine surfaces" ~count:100
    Gen.(
      let* d = int_range 1 4 in
      let* coeffs = array_size (return (d + 1)) (float_range (-10.0) 10.0) in
      let* target = array_size (return d) (map float_of_int (int_range 0 10)) in
      return (d, coeffs, target))
    (fun (d, coeffs, target) ->
      let space =
        Space.create
          (List.init d (fun i ->
               Param.int_range
                 ~name:(Printf.sprintf "p%d" i)
                 ~lo:0 ~hi:10 ~default:0 ()))
      in
      let affine c =
        let acc = ref coeffs.(0) in
        Array.iteri (fun i x -> acc := !acc +. (coeffs.(i + 1) *. x)) c;
        !acc
      in
      (* d+1 affinely independent anchors: the origin corner plus one
         step along each axis. *)
      let anchors =
        Array.make d 0.0
        :: List.init d (fun i ->
               Array.init d (fun j -> if i = j then 10.0 else 0.0))
      in
      let points = List.map (fun c -> (c, affine c)) anchors in
      let predicted = Estimator.estimate ~space ~points ~target () in
      Float.abs (predicted -. affine target) <= 1e-6)

(* ------------------------------------------------------------------ *)
(* Tuner under injected faults                                         *)

let peak_space =
  Space.create
    [
      Param.int_range ~name:"x" ~lo:0 ~hi:20 ~default:10 ();
      Param.int_range ~name:"y" ~lo:0 ~hi:20 ~default:10 ();
    ]

let prop_tuner_in_space_under_faults =
  QCheck2.Test.make ~name:"tuner outcome in-space under faults" ~count:25
    Gen.(
      let* fault_seed = int_range 0 1000 in
      let* rate = float_range 0.0 0.4 in
      return (fault_seed, rate))
    (fun (fault_seed, rate) ->
      let clean =
        Objective.create ~space:peak_space
          ~direction:Objective.Higher_is_better (fun c ->
            100.0 -. (((c.(0) -. 13.0) ** 2.0) +. ((c.(1) -. 7.0) ** 2.0)))
      in
      let faulty =
        Objective.with_faults
          ~rates:(Objective.fault_profile rate)
          ~seed:fault_seed clean
      in
      let options =
        {
          Tuner.default_options with
          Tuner.max_evaluations = 40;
          measure = Some Measure.default_policy;
        }
      in
      let o = Tuner.tune ~options faulty in
      Space.is_valid peak_space o.Tuner.best_config
      && o.Tuner.best_config = Space.snap peak_space o.Tuner.best_config
      && List.for_all
           (fun e -> Space.is_valid peak_space e.Recorder.config)
           o.Tuner.trace)

let prop_with_faults_deterministic =
  QCheck2.Test.make ~name:"with_faults replays bit-identically" ~count:50
    Gen.(
      let* fault_seed = int_range 0 10_000 in
      let* rate = float_range 0.0 0.6 in
      return (fault_seed, rate))
    (fun (fault_seed, rate) ->
      let make () =
        Objective.with_faults
          ~rates:(Objective.fault_profile rate)
          ~seed:fault_seed
          (Objective.create ~space:peak_space
             ~direction:Objective.Higher_is_better (fun c -> c.(0) +. c.(1)))
      in
      let trace obj =
        List.init 30 (fun i ->
            let c = [| float_of_int (i mod 21); float_of_int (i mod 7) |] in
            match obj.Objective.eval c with
            | v -> Printf.sprintf "%h" v
            | exception Objective.Measurement_failed k ->
                Objective.fault_to_string k)
      in
      trace (make ()) = trace (make ()))

(* ------------------------------------------------------------------ *)
(* Measurement policy                                                  *)

(* The robust objective is total and finite whatever the fault rates:
   faults either get retried away or collapse to the finite penalty. *)
let prop_robust_total_and_finite =
  QCheck2.Test.make ~name:"robust objective total and finite" ~count:50
    Gen.(
      let* fault_seed = int_range 0 10_000 in
      let* rate = float_range 0.0 1.0 in
      return (fault_seed, rate))
    (fun (fault_seed, rate) ->
      let faulty =
        Objective.with_faults
          ~rates:(Objective.fault_profile rate)
          ~seed:fault_seed
          (Objective.create ~space:peak_space
             ~direction:Objective.Higher_is_better (fun c -> c.(0)))
      in
      let robust, _ = Measure.robust faulty in
      List.for_all
        (fun i ->
          let c = [| float_of_int (i mod 21); float_of_int i |] in
          Float.is_finite (robust.Objective.eval c))
        (List.init 40 (fun i -> i)))

(* On a full give-up the simulated clock advances by exactly the capped
   exponential schedule: sum of min(cap, base * factor^i). *)
let prop_backoff_schedule_bounded =
  QCheck2.Test.make ~name:"backoff follows the capped schedule" ~count:100
    Gen.(
      let* max_attempts = int_range 2 6 in
      let* base = float_range 1.0 20.0 in
      let* factor = float_range 1.0 3.0 in
      let* cap_mult = float_range 1.0 20.0 in
      return (max_attempts, base, factor, base *. cap_mult))
    (fun (max_attempts, base, factor, cap) ->
      let policy =
        {
          Measure.default_policy with
          Measure.max_attempts;
          backoff_ms = base;
          backoff_factor = factor;
          backoff_cap_ms = cap;
        }
      in
      let broken =
        Objective.create ~space:peak_space
          ~direction:Objective.Higher_is_better (fun _ ->
            raise (Objective.Measurement_failed Objective.Transient))
      in
      let clock = Measure.Clock.create () in
      match Measure.measure ~policy ~clock broken [| 0.0; 0.0 |] with
      | Ok _ -> false
      | Error f ->
          let expected = ref 0.0 in
          for i = 0 to max_attempts - 2 do
            expected :=
              !expected +. Float.min cap (base *. (factor ** float_of_int i))
          done;
          f.Measure.attempts = max_attempts
          && Float.abs (Measure.Clock.now clock -. !expected) <= 1e-6)

(* A single corrupted reading never survives the median + MAD vetting:
   the reported value is the honest one. *)
let prop_mad_rejects_single_outlier =
  QCheck2.Test.make ~name:"MAD vetting rejects a lone outlier" ~count:100
    Gen.(
      let* honest = float_range 1.0 1000.0 in
      let* mult = float_range 3.0 50.0 in
      let* position = int_range 0 2 in
      return (honest, mult, position))
    (fun (honest, mult, position) ->
      let attempts = ref 0 in
      let obj =
        {
          (Objective.create ~space:peak_space
             ~direction:Objective.Higher_is_better (fun _ ->
               let n = !attempts in
               incr attempts;
               if n = position then honest *. mult else honest))
          with
          Objective.noisy = true;
        }
      in
      match Measure.measure obj [| 0.0; 0.0 |] with
      | Ok v -> Float.abs (v -. honest) <= 1e-6 *. honest
      | Error _ -> false)

(* Stats bookkeeping holds under any fault pattern: evals is always
   hits + misses, and faults/retries only ever accumulate. *)
let prop_stats_invariant =
  QCheck2.Test.make ~name:"stats invariant: evals = hits + misses" ~count:50
    Gen.(
      let* fault_seed = int_range 0 10_000 in
      let* rate = float_range 0.0 0.6 in
      let* configs = list_size (int_range 1 30) (int_range 0 5) in
      return (fault_seed, rate, configs))
    (fun (fault_seed, rate, configs) ->
      let faulty =
        Objective.with_faults
          ~rates:(Objective.fault_profile rate)
          ~seed:fault_seed
          (Objective.create ~space:peak_space
             ~direction:Objective.Higher_is_better (fun c -> c.(0)))
      in
      let robust, _ = Measure.robust faulty in
      let cached = Objective.cached ~freeze_noise:true robust in
      List.iter
        (fun i -> ignore (cached.Objective.eval [| float_of_int i; 0.0 |]))
        configs;
      let distinct = List.length (List.sort_uniq compare configs) in
      match Objective.stats cached with
      | None -> false
      | Some s ->
          s.Objective.evals = s.Objective.hits + s.Objective.misses
          (* memo hits: every repeat of an already-measured config *)
          && s.Objective.hits = List.length configs - distinct
          (* misses are physical measurements: every logical
             measurement starts at least one reading, and each retry
             is one more physical attempt *)
          && s.Objective.misses - s.Objective.retries >= distinct
          (* every retry was provoked by a fault *)
          && s.Objective.faults >= s.Objective.retries)

let suite =
  List.map to_alcotest
    [
      prop_rsl_roundtrip;
      prop_rsl_repair_feasible;
      prop_parse_message_total;
      prop_report_parse_roundtrip;
      prop_assign_always_feasible;
      prop_estimator_affine_exact;
      prop_tuner_in_space_under_faults;
      prop_with_faults_deterministic;
      prop_robust_total_and_finite;
      prop_backoff_schedule_bounded;
      prop_mad_rejects_single_outlier;
      prop_stats_invariant;
    ]
