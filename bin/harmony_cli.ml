(* Command-line front end for the Active Harmony reproduction.

   harmony_cli experiment [ID]   regenerate the paper's tables/figures
   harmony_cli tune ...          run the tuner on a built-in system
   harmony_cli prioritize ...    run the parameter prioritizing tool
   harmony_cli rsl ...           count/enumerate a restricted space
   harmony_cli db ...            inspect an experience database *)

open Cmdliner
open Harmony
open Harmony_param
open Harmony_objective
module Rng = Harmony_numerics.Rng
module Ws = Harmony_webservice
module Generator = Harmony_datagen.Generator
module Pool = Harmony_parallel.Pool
module Telemetry = Harmony_telemetry.Telemetry
module Flight = Harmony_telemetry.Flight
module Export = Harmony_telemetry.Export
module Summary = Harmony_telemetry.Summary
module Service = Harmony_service.Service
module Admission = Harmony_service.Admission

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)

let mix_arg =
  let doc = "TPC-W workload mix: browsing, shopping or ordering." in
  Arg.(value & opt string "shopping" & info [ "mix" ] ~docv:"MIX" ~doc)

let system_arg =
  let doc =
    "System to tune: 'model' (analytic 3-tier web service), 'sim' \
     (discrete-event web service), or 'datagen' (synthetic rule data)."
  in
  Arg.(value & opt string "model" & info [ "system" ] ~docv:"SYSTEM" ~doc)

let budget_arg =
  let doc = "Objective-evaluation budget." in
  Arg.(value & opt int 150 & info [ "budget" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Random seed for stochastic components." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let noise_arg =
  let doc = "Uniform measurement perturbation level (e.g. 0.05 for 5%)." in
  Arg.(value & opt float 0.0 & info [ "noise" ] ~docv:"LEVEL" ~doc)

let jobs_arg =
  let doc =
    "Evaluation domains for parallelizable work (1 = today's sequential \
     path).  Defaults to the runtime's recommended domain count.  Output is \
     byte-identical at every job count."
  in
  Arg.(
    value
    & opt int (Pool.default_domains ())
    & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let faults_arg =
  let doc =
    "Inject measurement faults at RATE with an optional injection SEED \
     (default 1): transients at RATE, outliers at RATE/2, timeouts at \
     RATE/4, persistently broken configurations at RATE/8.  Enables the \
     fault-tolerant measurement policy (retry with capped backoff, \
     median-of-k re-measurement, MAD outlier rejection, worst-case \
     penalties for measurements that stay broken)."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"RATE[,SEED]" ~doc)

let parse_faults = function
  | None -> Ok None
  | Some text -> (
      let rate, seed =
        match String.split_on_char ',' text with
        | [ rate ] -> (rate, Some "1")
        | [ rate; seed ] -> (rate, Some seed)
        | _ -> (text, None)
      in
      match (float_of_string_opt rate, Option.map int_of_string_opt seed) with
      | Some rate, Some (Some seed) when rate >= 0.0 && rate <= 1.0 ->
          Ok (Some (rate, seed))
      | _ -> Error ("cannot parse --faults " ^ text ^ " (want RATE[,SEED])"))

let memo_arg =
  let doc =
    "Memoize measurements per configuration: a revisited grid point returns \
     its recorded value instead of re-measuring.  The memo table sits under \
     the noise layer, so noise (if any) stays live; hit/miss counters are \
     printed afterwards."
  in
  Arg.(value & flag & info [ "memo" ] ~doc)

let objective_of ~system ~mix ~seed ~noise ?(memo = false)
    ?(telemetry = Telemetry.off) () =
  let base =
    match system with
    | "model" -> Ws.Model.objective ~mix:(Ws.Tpcw.mix_of_label mix) ()
    | "sim" -> Ws.Simulation.objective ~mix:(Ws.Tpcw.mix_of_label mix) ()
    | "datagen" ->
        let g = Generator.synthetic_webservice ~seed () in
        let workload =
          match mix with
          | "browsing" -> Generator.browsing_mix
          | "ordering" -> Generator.ordering_mix
          | _ -> Generator.shopping_mix
        in
        Generator.objective g ~workload
    | other -> invalid_arg ("unknown system: " ^ other)
  in
  (* Cache below, noise on top: the ordering Objective.cached enforces
     for live noise. *)
  let base = if memo then Objective.cached ~telemetry base else base in
  if noise > 0.0 then Objective.with_noise (Rng.create seed) ~level:noise base
  else base

let print_memo_stats objective =
  match Objective.stats objective with
  | None -> ()
  | Some s ->
      Format.printf "memo:              %d hits / %d misses (%d requests)@."
        s.Objective.hits s.Objective.misses s.Objective.evals

(* ------------------------------------------------------------------ *)
(* experiment                                                          *)

let experiment_cmd =
  let id_arg =
    let doc = "Experiment id (fig4..fig10, table1, table2, headline) or 'all'." in
    Arg.(value & pos 0 string "all" & info [] ~docv:"ID" ~doc)
  in
  let run id jobs =
    if jobs < 1 then `Error (false, "--jobs must be at least 1")
    else if id = "all" then begin
      Pool.with_pool ~domains:jobs (fun pool ->
          Harmony_experiments.Registry.run_all ~pool Format.std_formatter);
      `Ok ()
    end
    else
      match Harmony_experiments.Registry.find id with
      | Some f ->
          Pool.with_pool ~domains:jobs (fun pool ->
              Harmony_experiments.Report.print Format.std_formatter
                (f (Some pool)));
          `Ok ()
      | None ->
          `Error
            ( false,
              Printf.sprintf "unknown experiment %s (known: %s)" id
                (String.concat ", " Harmony_experiments.Registry.ids) )
  in
  let doc = "Regenerate the paper's tables and figures." in
  Cmd.v (Cmd.info "experiment" ~doc) Term.(ret (const run $ id_arg $ jobs_arg))

(* ------------------------------------------------------------------ *)
(* tune                                                                *)

let tune_cmd =
  let init_arg =
    let doc = "Initial simplex: 'spread' (improved) or 'extremes' (original)." in
    Arg.(value & opt string "spread" & info [ "init" ] ~docv:"INIT" ~doc)
  in
  let top_n_arg =
    let doc = "Tune only the N most sensitive parameters." in
    Arg.(value & opt (some int) None & info [ "top-n" ] ~docv:"N" ~doc)
  in
  let trace_csv_arg =
    let doc = "Write the tuning trace (one measurement per line) to FILE." in
    Arg.(value & opt (some string) None & info [ "trace-csv" ] ~docv:"FILE" ~doc)
  in
  let telemetry_arg =
    let doc =
      "Record a telemetry trace of the run (phase spans, per-evaluation \
       events, metrics) to FILE.  FORMAT is 'jsonl' (default; readable back \
       with $(b,harmony_cli stats)), 'chrome' (load into about:tracing / \
       Perfetto) or 'prometheus' (metrics only); without it the format is \
       inferred from the file extension.  The trace uses a logical clock \
       (event sequence numbers), so a seeded run's trace is reproducible, \
       and recording never changes the tuning result."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "telemetry" ] ~docv:"FILE[,FORMAT]" ~doc)
  in
  let parse_telemetry = function
    | None -> Ok None
    | Some text -> (
        match String.rindex_opt text ',' with
        | None -> Ok (Some (text, Export.format_of_filename text))
        | Some i -> (
            let file = String.sub text 0 i in
            let fmt = String.sub text (i + 1) (String.length text - i - 1) in
            match Export.format_of_string fmt with
            | Some format when file <> "" -> Ok (Some (file, format))
            | _ ->
                Error
                  ("cannot parse --telemetry " ^ text ^ " (want FILE[,FORMAT])")))
  in
  let run system mix budget seed noise memo faults init top_n trace_csv
      telemetry_spec jobs =
    if jobs < 1 then `Error (false, "--jobs must be at least 1")
    else
    match parse_telemetry telemetry_spec with
    | Error msg -> `Error (false, msg)
    | Ok telemetry_out ->
    let telemetry =
      match telemetry_out with
      | None -> Telemetry.off
      | Some _ -> Telemetry.create ()
    in
    match
      (objective_of ~system ~mix ~seed ~noise ~memo ~telemetry (),
       parse_faults faults)
    with
    | exception Invalid_argument msg -> `Error (false, msg)
    | _, Error msg -> `Error (false, msg)
    | objective, Ok faults ->
        let objective, measure =
          match faults with
          | None -> (objective, None)
          | Some (rate, fault_seed) ->
              ( Objective.with_faults
                  ~rates:(Objective.fault_profile rate)
                  ~seed:fault_seed objective,
                Some Measure.default_policy )
        in
        let init =
          match init with
          | "extremes" -> Simplex.Init.Extremes
          | _ -> Simplex.Init.Spread
        in
        let options =
          { Tuner.default_options with Tuner.init; max_evaluations = budget;
            measure }
        in
        let session = Session.create ~objective ~options ~telemetry () in
        let r =
          if jobs = 1 then Session.tune ?top_n session
          else
            Pool.with_pool ~domains:jobs (fun pool ->
                Session.tune ?top_n ~pool session)
        in
        let space = objective.Objective.space in
        Format.printf "tuned parameters:  %s@."
          (String.concat ", "
             (List.map
                (fun i -> (Space.param space i).Param.name)
                r.Session.tuned_indices));
        Format.printf "best performance:  %.3f@." r.Session.outcome.Tuner.best_performance;
        Format.printf "best configuration: %a@." (Space.pp_config space)
          r.Session.full_best_config;
        Format.printf "evaluations:       %d@." r.Session.outcome.Tuner.evaluations;
        let m = Tuner.Metrics.of_outcome objective r.Session.outcome in
        Format.printf "trace summary:     %a@." Tuner.Metrics.pp m;
        (match trace_csv with
        | None -> ()
        | Some file ->
            (* Session.trace_csv renders the trace over the *full*
               space: with --top-n the frozen parameters appear as
               constant columns at their pinned values instead of
               being dropped. *)
            Out_channel.with_open_text file (fun oc ->
                Out_channel.output_string oc (Session.trace_csv session r));
            Format.printf "trace written to   %s@." file);
        (match r.Session.outcome.Tuner.measurement with
        | None -> ()
        | Some s ->
            Format.printf "measurement:       %a@." Measure.pp_summary s;
            Format.printf "degraded:          %b@." r.Session.degraded);
        print_memo_stats objective;
        (match telemetry_out with
        | None -> ()
        | Some (file, format) ->
            Out_channel.with_open_text file (fun oc ->
                Out_channel.output_string oc (Export.render telemetry format));
            Format.printf "telemetry written to %s (%s, %d events)@." file
              (Export.format_to_string format)
              (Telemetry.event_count telemetry));
        `Ok ()
  in
  let doc = "Tune a built-in system with Active Harmony." in
  Cmd.v (Cmd.info "tune" ~doc)
    Term.(
      ret
        (const run $ system_arg $ mix_arg $ budget_arg $ seed_arg $ noise_arg
       $ memo_arg $ faults_arg $ init_arg $ top_n_arg $ trace_csv_arg
       $ telemetry_arg $ jobs_arg))

(* ------------------------------------------------------------------ *)
(* prioritize                                                          *)

let prioritize_cmd =
  let repeats_arg =
    let doc = "Measurements per sweep point (averaged)." in
    Arg.(value & opt int 1 & info [ "repeats" ] ~docv:"K" ~doc)
  in
  let run system mix seed noise memo repeats jobs =
    if jobs < 1 then `Error (false, "--jobs must be at least 1")
    else
      match objective_of ~system ~mix ~seed ~noise ~memo () with
      | exception Invalid_argument msg -> `Error (false, msg)
      | objective ->
          let report =
            Pool.with_pool ~domains:jobs (fun pool ->
                Sensitivity.analyze ~pool ~repeats objective)
          in
          Format.printf "%a" Sensitivity.pp report;
          Format.printf "total evaluations: %d@." (Sensitivity.evaluations report);
          print_memo_stats objective;
          `Ok ()
  in
  let doc = "Rank parameters by performance sensitivity (the prioritizing tool)." in
  Cmd.v (Cmd.info "prioritize" ~doc)
    Term.(
      ret
        (const run $ system_arg $ mix_arg $ seed_arg $ noise_arg $ memo_arg
       $ repeats_arg $ jobs_arg))

(* ------------------------------------------------------------------ *)
(* rsl                                                                 *)

let rsl_cmd =
  let file_arg =
    let doc = "File containing a resource specification." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let enumerate_arg =
    let doc = "Print up to N feasible configurations." in
    Arg.(value & opt (some int) None & info [ "enumerate" ] ~docv:"N" ~doc)
  in
  let run file enumerate =
    let ic = open_in file in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Rsl.parse text with
    | exception Rsl.Parse_error msg -> `Error (false, "parse error: " ^ msg)
    | spec ->
        Format.printf "bundles: %s@." (String.concat ", " (Rsl.names spec));
        Format.printf "feasible configurations: %d@."
          (Rsl.feasible_count ~limit:10_000_000 spec);
        (match enumerate with
        | None -> ()
        | Some n ->
            let count = ref 0 in
            Seq.iter
              (fun v ->
                if !count < n then begin
                  incr count;
                  Format.printf "  %s@."
                    (String.concat " "
                       (Array.to_list (Array.map string_of_int v)))
                end)
              (Rsl.enumerate spec));
        `Ok ()
  in
  let doc = "Parse a resource specification and count its restricted space." in
  Cmd.v (Cmd.info "rsl" ~doc) Term.(ret (const run $ file_arg $ enumerate_arg))

(* ------------------------------------------------------------------ *)
(* factorial                                                           *)

let factorial_cmd =
  let design_arg =
    let doc = "'full' (two-level full factorial, with interactions) or 'pb' \
               (Plackett-Burman main-effect screening)." in
    Arg.(value & opt string "pb" & info [ "design" ] ~docv:"DESIGN" ~doc)
  in
  let run system mix seed noise design =
    match objective_of ~system ~mix ~seed ~noise () with
    | exception Invalid_argument msg -> `Error (false, msg)
    | objective -> (
        let effects =
          match design with
          | "full" -> Ok (Factorial.full objective)
          | "pb" -> Ok (Factorial.plackett_burman objective)
          | other -> Error ("unknown design: " ^ other)
        in
        match effects with
        | Error msg -> `Error (false, msg)
        | exception Invalid_argument msg -> `Error (false, msg)
        | Ok effects ->
            Format.printf "design runs: %d@." effects.Factorial.runs;
            List.iter
              (fun (name, effect) -> Format.printf "%-24s %12.3f@." name effect)
              (Factorial.ranked_main effects);
            if Array.length effects.Factorial.interactions > 0 then begin
              Format.printf "@.two-way interactions:@.";
              Array.iter
                (fun (i, j, e) ->
                  if Float.abs e > 1e-9 then
                    Format.printf "%-12s x %-12s %12.3f@."
                      effects.Factorial.names.(i) effects.Factorial.names.(j) e)
                effects.Factorial.interactions;
              Format.printf "interaction/main ratio: %.3f@."
                (Factorial.interaction_ratio effects)
            end;
            `Ok ())
  in
  let doc = "Factorial experiment designs (for interacting parameters)." in
  Cmd.v (Cmd.info "factorial" ~doc)
    Term.(ret (const run $ system_arg $ mix_arg $ seed_arg $ noise_arg $ design_arg))

(* ------------------------------------------------------------------ *)
(* stats                                                               *)

let stats_cmd =
  let file_arg =
    let doc =
      "JSONL telemetry trace, as written by $(b,tune --telemetry FILE.jsonl)."
    in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let run file =
    let ic = open_in file in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Summary.of_jsonl text with
    | Error msg -> `Error (false, file ^ ": " ^ msg)
    | Ok summary ->
        print_string (Summary.to_string summary);
        `Ok ()
  in
  let doc =
    "Summarize a JSONL telemetry trace: span durations, instants, counters, \
     gauges and histograms."
  in
  Cmd.v (Cmd.info "stats" ~doc) Term.(ret (const run $ file_arg))

(* ------------------------------------------------------------------ *)
(* serve                                                               *)

let serve_cmd =
  let journal_arg =
    let doc =
      "Write-ahead journal FILE: every state-changing protocol event is \
       logged and fsynced before it is applied, so a crashed server can be \
       restarted with $(b,--recover) without losing the tuning session."
    in
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)
  in
  let recover_arg =
    let doc =
      "Rebuild the server state from the journal (and its snapshot) before \
       serving, instead of starting fresh.  Requires $(b,--journal).  A \
       torn or corrupt journal tail degrades to the longest valid prefix."
    in
    Arg.(value & flag & info [ "recover" ] ~doc)
  in
  let shards_arg =
    let doc =
      "Serve the sharded multi-session service with $(docv) shards instead \
       of a single session.  Every protocol line is prefixed with a client \
       id ($(b,<id> register min|max) + RSL lines + blank line, $(b,<id> \
       query), $(b,<id> report <perf>), $(b,<id> done)); the unprefixed \
       $(b,service-metrics) dumps the merged per-shard registries and \
       $(b,dump-flight) the per-shard flight recorders (the most recent \
       telemetry events, JSONL).  With $(b,--journal FILE), each shard \
       journals independently to $(b,FILE.shard<i>)."
    in
    Arg.(value & opt (some int) None & info [ "shards" ] ~docv:"N" ~doc)
  in
  let max_inflight_arg =
    let doc =
      "Admission control: at most $(docv) messages in flight per shard \
       (0 = unlimited).  Excess work is answered with a total \
       $(b,overloaded: retry-after=N) rejection, never dropped.  Giving \
       any of $(b,--max-inflight), $(b,--rate) or $(b,--deadline-ticks) \
       turns edge policing on (remaining knobs at their defaults)."
    in
    Arg.(value & opt (some int) None & info [ "max-inflight" ] ~docv:"N" ~doc)
  in
  let rate_arg =
    let doc =
      "Admission control: per-client token bucket of $(docv) tokens per \
       logical tick (burst capacity $(docv); 0 = unlimited).  The logical \
       clock ticks once per handled line."
    in
    Arg.(value & opt (some int) None & info [ "rate" ] ~docv:"R" ~doc)
  in
  let deadline_arg =
    let doc =
      "Admission control: every message carries a logical deadline \
       $(docv) ticks after arrival; work that misses it is shed with \
       $(b,deadline-expired: retry-after=0) before it touches a session."
    in
    Arg.(
      value & opt (some int) None & info [ "deadline-ticks" ] ~docv:"D" ~doc)
  in
  let run budget shards journal recover max_inflight rate deadline_ticks =
    let options =
      { Simplex.default_options with Simplex.max_evaluations = budget }
    in
    (* Any admission flag turns edge policing on; the rest of the
       config keeps the library defaults (hysteretic degraded mode
       included). *)
    let admission_config =
      match (max_inflight, rate, deadline_ticks) with
      | None, None, None -> None
      | _ ->
          let base = Admission.default_config in
          Some
            {
              base with
              Admission.max_inflight =
                Option.value ~default:base.Admission.max_inflight max_inflight;
              rate = Option.value ~default:0 rate;
              burst = Option.value ~default:0 rate;
              refill_every = 1;
            }
    in
    (* The serve loop is the one place a wall clock is injected: span
       timestamps and handle latencies are milliseconds since startup.
       lib/ itself never reads a clock (lint rule D1). *)
    let start = Unix.gettimeofday () in
    let telemetry =
      Telemetry.create ~clock:(fun () -> (Unix.gettimeofday () -. start) *. 1e3) ()
    in
    (* Line protocol on stdin/stdout.  `register min|max` keeps reading
       specification lines until a blank line or EOF. *)
    let serve server =
      (* Single-session edge policing: one shard, one implicit client.
         Rejections are journaled as shed records (when the message
         class is journaled at all) so recovery replays them
         byte-for-byte, exactly like the sharded service. *)
      let admission =
        Option.map
          (Admission.create ~telemetry:(fun _ -> telemetry) ~shards:1)
          admission_config
      in
      let rec read_spec acc =
        match In_channel.input_line stdin with
        | None -> List.rev acc
        | Some line when String.trim line = "" -> List.rev acc
        | Some line -> read_spec (line :: acc)
      in
      let respond reply =
        print_endline (Server.reply_to_string reply);
        flush stdout
      in
      let handle message =
        match admission with
        | None -> Server.handle server message
        | Some adm -> (
            Admission.tick adm;
            let enqueued_at = Admission.now adm in
            let deadline =
              Option.map (fun d -> enqueued_at + d) deadline_ticks
            in
            let priority =
              match message with
              | Server.Register _ -> Admission.Critical
              | Server.Report _ | Server.Report_failed -> Admission.Normal
              | Server.Query | Server.Metrics -> Admission.Low
            in
            match
              Admission.check adm ~shard:0 ~client:"client" ~priority
                ~enqueued_at ?deadline ()
            with
            | Admission.Admit ->
                let reply = Server.handle server message in
                Admission.complete adm ~shard:0;
                reply
            | Admission.Reject { reason; retry_after; degraded } ->
                let reply =
                  Server.Rejected
                    (Admission.reject_text ~reason ~retry_after ~degraded)
                in
                (match message with
                | Server.Query | Server.Metrics -> ()
                | Server.Register _ | Server.Report _ | Server.Report_failed
                  ->
                    Server.journal_shed server message
                      ~reply:(Server.reply_to_string reply));
                reply)
      in
      let rec loop () =
        match In_channel.input_line stdin with
        | None -> ()
        | Some line -> (
            let line = String.trim line in
            if line = "" then loop ()
            else if line = "quit" then ()
            else begin
              let text =
                match String.split_on_char ' ' line with
                | "register" :: _ ->
                    line ^ "\n" ^ String.concat "\n" (read_spec [])
                | _ -> line
              in
              (match Server.parse_message text with
              | Ok message -> respond (handle message)
              | Error msg -> respond (Server.Rejected msg));
              loop ()
            end)
      in
      Format.printf
        "harmony tuning server: 'register min|max' + RSL lines + blank line, \
         then 'query' / 'report <perf>' / 'report failed' / 'metrics' / \
         'quit'@.";
      loop ();
      `Ok ()
    in
    (* The sharded service speaks the client-id-prefixed protocol on
       the same stdin/stdout loop; each shard gets its own wall-clocked
       telemetry handle, merged on demand by [service-metrics]. *)
    let serve_service service =
      let rec read_spec acc =
        match In_channel.input_line stdin with
        | None -> List.rev acc
        | Some line when String.trim line = "" -> List.rev acc
        | Some line -> read_spec (line :: acc)
      in
      let respond reply =
        print_endline (Service.reply_to_string reply);
        flush stdout
      in
      let rec loop () =
        match In_channel.input_line stdin with
        | None -> ()
        | Some line -> (
            let line = String.trim line in
            if line = "" then loop ()
            else if line = "quit" then ()
            else begin
              let text =
                match String.split_on_char ' ' line with
                | _ :: "register" :: _ ->
                    line ^ "\n" ^ String.concat "\n" (read_spec [])
                | _ -> line
              in
              (match Service.parse_message text with
              | Ok message ->
                  (* Deadline stamping happens at the edge, against the
                     tick this message will be handled at (the clock
                     ticks once per handled message): --deadline-ticks 0
                     means "handle at arrival", which a synchronous
                     loop always meets. *)
                  let enqueued_at = Service.admission_now service + 1 in
                  let deadline =
                    Option.map (fun d -> enqueued_at + d) deadline_ticks
                  in
                  respond
                    (Service.handle_env service
                       (Service.envelope ~enqueued_at ?deadline message))
              | Error msg -> respond (Service.Service_error msg));
              loop ()
            end)
      in
      Format.printf
        "harmony tuning service (%d shard(s)): '<id> register min|max' + RSL \
         lines + blank line, then '<id> query' / '<id> report <perf>' / \
         '<id> report failed' / '<id> done' / 'service-metrics' / \
         'dump-flight' / 'quit'@."
        (Service.shards service);
      loop ();
      `Ok ()
    in
    (* Each serve shard carries a flight recorder: the last 256 events
       stay resident for the [dump-flight] protocol message, whether or
       not anyone is exporting full traces. *)
    let shard_telemetry _shard =
      Telemetry.create
        ~clock:(fun () -> (Unix.gettimeofday () -. start) *. 1e3)
        ~flight:(Flight.create ~capacity:256) ()
    in
    match (shards, journal, recover) with
    | _, None, true -> `Error (false, "--recover requires --journal")
    | Some n, _, _ when n < 1 -> `Error (false, "--shards must be >= 1")
    | None, None, false -> serve (Server.create ~options ~telemetry ())
    | None, Some path, false ->
        let server = Server.create ~options ~telemetry () in
        Server.attach_journal server ~journal:path ();
        serve server
    | None, Some path, true ->
        let r = Server.recover ~options ~telemetry ~journal:path () in
        Format.printf "recovered from %s: %d event(s) replayed, %d dropped@."
          path r.Server.replayed r.Server.dropped;
        (match r.Server.last_reply with
        | None -> ()
        | Some reply ->
            Format.printf "last reply before the crash: %s@."
              (Server.reply_to_string reply));
        serve r.Server.server
    | Some n, None, false ->
        serve_service
          (Service.create ~options ~telemetry:shard_telemetry
             ?admission:admission_config ~shards:n ())
    | Some n, Some path, false ->
        let service =
          Service.create ~options ~telemetry:shard_telemetry
            ?admission:admission_config ~shards:n ()
        in
        Service.attach_journals service ~journal:path ();
        serve_service service
    | Some n, Some path, true ->
        let r =
          Service.recover ~options ~telemetry:shard_telemetry
            ?admission:admission_config ~shards:n ~journal:path ()
        in
        Format.printf
          "recovered %d shard(s) from %s: %d message(s) replayed, %d dropped@."
          n path r.Service.replayed r.Service.dropped;
        List.iter
          (fun (pr : Service.shard_recovery) ->
            Format.printf "  shard %d: %d replayed, %d dropped@." pr.shard
              pr.replayed pr.dropped)
          r.Service.per_shard;
        serve_service r.Service.service
  in
  let doc =
    "Run the tuning server on stdin/stdout (line protocol), optionally \
     crash-safe via a write-ahead journal."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      ret
        (const run $ budget_arg $ shards_arg $ journal_arg $ recover_arg
       $ max_inflight_arg $ rate_arg $ deadline_arg))

(* ------------------------------------------------------------------ *)
(* rules                                                               *)

let rules_cmd =
  let file_arg =
    let doc = "File of CNF performance rules ('perf <- v0 = 3 & 2 <= v1 < 8')." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let ranges_arg =
    let doc = "Variable ranges as 'lo:hi,lo:hi,...' (one per variable)." in
    Arg.(required & opt (some string) None & info [ "ranges" ] ~docv:"RANGES" ~doc)
  in
  let eval_arg =
    let doc = "Evaluate the rules at this input, 'x0,x1,...' (repeatable)." in
    Arg.(value & opt_all string [] & info [ "eval" ] ~docv:"INPUT" ~doc)
  in
  let run file ranges inputs =
    let parse_ranges s =
      s |> String.split_on_char ','
      |> List.map (fun pair ->
             match String.split_on_char ':' pair with
             | [ lo; hi ] -> (float_of_string lo, float_of_string hi)
             | _ -> failwith ("bad range: " ^ pair))
      |> Array.of_list
    in
    match parse_ranges ranges with
    | exception _ -> `Error (false, "cannot parse --ranges (want lo:hi,lo:hi,...)")
    | ranges -> (
        let num_vars = Array.length ranges in
        let ic = open_in file in
        let text =
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        match Harmony_datagen.Rules.of_text ~num_vars ~ranges text with
        | exception Harmony_datagen.Rules.Parse_error msg ->
            `Error (false, "parse error: " ^ msg)
        | exception Invalid_argument msg -> `Error (false, msg)
        | rules ->
            Format.printf "%d rules over %d variables; conflict-free: %b@."
              (Array.length (Harmony_datagen.Rules.rules rules))
              num_vars
              (Harmony_datagen.Rules.conflict_free rules);
            List.iter
              (fun input ->
                match
                  input |> String.split_on_char ','
                  |> List.map float_of_string |> Array.of_list
                with
                | exception _ -> Format.printf "%s -> cannot parse input@." input
                | point ->
                    if Array.length point <> num_vars then
                      Format.printf "%s -> arity mismatch@." input
                    else
                      Format.printf "%s -> %g@." input
                        (Harmony_datagen.Rules.eval rules point))
              inputs;
            `Ok ())
  in
  let doc = "Parse and evaluate a CNF performance-rule file (DataGen notation)." in
  Cmd.v (Cmd.info "rules" ~doc)
    Term.(ret (const run $ file_arg $ ranges_arg $ eval_arg))

(* ------------------------------------------------------------------ *)
(* db                                                                  *)

let db_cmd =
  let file_arg =
    let doc = "Experience database file (History.save format)." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let compress_arg =
    let doc = "Compress to at most N entries (k-means over characteristics)." in
    Arg.(value & opt (some int) None & info [ "compress" ] ~docv:"N" ~doc)
  in
  let out_arg =
    let doc = "Output file for --compress (defaults to overwriting the input)." in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let run file compress out =
    match History.load_salvage file with
    | db, dropped ->
        if dropped > 0 then
          Format.printf
            "warning: malformed database; kept the valid prefix, dropped %d \
             line(s)@."
            dropped;
        Format.printf "%d experience entr%s@." (History.size db)
          (if History.size db = 1 then "y" else "ies");
        List.iter
          (fun e ->
            Format.printf "entry %d: label=%S measurements=%d characteristics=[%s]@."
              e.History.id e.History.label
              (List.length e.History.evaluations)
              (String.concat "; "
                 (Array.to_list (Array.map (Printf.sprintf "%.3f") e.History.characteristics))))
          (History.entries db);
        (match compress with
        | None -> ()
        | Some n ->
            let compressed = History.compress (Rng.create 1) db ~max_entries:n in
            let target = Option.value out ~default:file in
            History.save compressed target;
            Format.printf "compressed %d -> %d entries into %s@." (History.size db)
              (History.size compressed) target);
        `Ok ()
  in
  let doc = "Inspect or compress an experience database." in
  Cmd.v (Cmd.info "db" ~doc) Term.(ret (const run $ file_arg $ compress_arg $ out_arg))

(* ------------------------------------------------------------------ *)

let () =
  let doc = "Active Harmony prior-run-reuse autotuning (SC 2004 reproduction)" in
  let info = Cmd.info "harmony_cli" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info
       [
         experiment_cmd; tune_cmd; prioritize_cmd; factorial_cmd; serve_cmd;
         stats_cmd; rsl_cmd; rules_cmd; db_cmd;
       ]))
