(* The paper's climate-simulation example (Section 4.1 / Appendix B):
   a fixed pool of A compute nodes is split between the land, ocean
   and atmosphere tasks; a fixed split causes load imbalance, so the
   node counts are tunable — with the constraint L + O + M = A
   expressed in the resource specification language.

   This example drives the tuning through the Harmony *server*
   protocol, the way an instrumented application would: register the
   RSL program, receive assignments, run a (simulated) time step,
   report the step time.

   Run with: dune exec examples/climate_groups.exe *)

open Harmony

let total_nodes = 32

(* Computational demand of each task (work units per time step): the
   atmosphere dominates, as in real coupled models. *)
let demand = [| 40.0; 65.0; 150.0 |] (* land, ocean, atmosphere *)

(* A time step finishes when the slowest group finishes; groups scale
   almost linearly with a small coordination overhead per node. *)
let step_time (l, o, m) =
  let time task nodes =
    let n = float_of_int nodes in
    (demand.(task) /. n) +. (0.05 *. n)
  in
  Float.max (time 0 l) (Float.max (time 1 o) (time 2 m))

(* L and O are free; M = A - L - O is determined (Appendix B). *)
let spec =
  Printf.sprintf
    "{ harmonyBundle LAND { int {1 %d 1} }}\n\
     { harmonyBundle OCEAN { int {1 %d-$LAND 1} }}"
    (total_nodes - 2) (total_nodes - 1)

let () =
  Format.printf "balancing %d nodes across land/ocean/atmosphere@." total_nodes;
  Format.printf "specification:@.%s@.@." spec;

  let server =
    Server.create
      ~options:{ Simplex.default_options with Simplex.max_evaluations = 120 }
      ()
  in
  let steps = ref 0 in
  let rec session reply =
    match reply with
    | Server.Assign assignment ->
        incr steps;
        let l = List.assoc "LAND" assignment in
        let o = List.assoc "OCEAN" assignment in
        let m = total_nodes - l - o in
        (* One simulated time step under this node split; the server
           minimizes the reported step time. *)
        session (Server.handle server (Server.Report (step_time (l, o, m))))
    | Server.Done { best; performance } ->
        let l = List.assoc "LAND" best in
        let o = List.assoc "OCEAN" best in
        (l, o, performance)
    | Server.Rejected msg -> failwith ("server rejected: " ^ msg)
    | Server.Stats _ -> failwith "unexpected stats reply"
  in
  let l, o, best_time =
    session
      (Server.handle server (Server.Register { spec; direction = Server.Minimize }))
  in
  let m = total_nodes - l - o in
  Format.printf "after %d time steps: land=%d ocean=%d atmosphere=%d@." !steps l o m;
  Format.printf "step time: %.3f (fixed equal split: %.3f)@." best_time
    (step_time (total_nodes / 3, total_nodes / 3, total_nodes - (2 * (total_nodes / 3))));
  (* Brute-force reference over all feasible splits. *)
  let ideal = ref infinity in
  for l = 1 to total_nodes - 2 do
    for o = 1 to total_nodes - 1 - l do
      ideal := Float.min !ideal (step_time (l, o, total_nodes - l - o))
    done
  done;
  Format.printf "exhaustive optimum: %.3f@." !ideal
