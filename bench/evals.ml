(* Evaluation-throughput micro-benchmark: evals/sec and Gc minor
   words per evaluation for the two hot objectives (analytic MVA
   model, discrete-event simulation) plus the batch+memo engine on a
   tuning-shaped stream.  The numbers back the before/after table in
   EXPERIMENTS.md and guard the allocation discipline in CI:

     dune exec bench/evals.exe                      print the table
     dune exec bench/evals.exe -- --check FILE      fail (exit 1) if
                                                    minor words/eval
                                                    regressed >2x over
                                                    the recorded
                                                    baseline
     dune exec bench/evals.exe -- --write-baseline FILE

   A Chrome trace with every measured figure lands in BENCH_6.json
   (load into about:tracing / Perfetto), next to the ablation traces
   bench/main.exe writes. *)

open Harmony_objective
module Ws = Harmony_webservice
module Rng = Harmony_numerics.Rng
module Space = Harmony_param.Space
module Pool = Harmony_parallel.Pool
module Telemetry = Harmony_telemetry.Telemetry
module Export = Harmony_telemetry.Export

(* ------------------------------------------------------------------ *)
(* Measurement                                                         *)

type figures = { words_per_eval : float; evals_per_sec : float }

(* [f ()] performs [per_call] evaluations; [calls] of them are timed
   after [warmup] untimed ones. *)
let measure ~warmup ~calls ~per_call f =
  for _ = 1 to warmup do
    f ()
  done;
  Gc.full_major ();
  let words0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to calls do
    f ()
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  let words = Gc.minor_words () -. words0 in
  let evals = float_of_int (calls * per_call) in
  {
    words_per_eval = words /. evals;
    evals_per_sec = (evals /. Float.max 1e-9 elapsed);
  }

(* A deterministic pool of distinct grid configurations to cycle
   through, so memo layers and warm caches cannot flatter the
   per-evaluation numbers. *)
let distinct_configs space ~count ~seed =
  let rng = Rng.create seed in
  let seen = Hashtbl.create count in
  let rec draw budget =
    if budget = 0 then invalid_arg "distinct_configs: space too small"
    else
      let c = Space.random rng space in
      let key = Space.config_key c in
      if Hashtbl.mem seen key then draw (budget - 1)
      else begin
        Hashtbl.add seen key ();
        c
      end
  in
  Array.init count (fun _ -> draw 10_000)

(* ------------------------------------------------------------------ *)
(* Scenarios                                                           *)

let mva_figures () =
  let obj = Ws.Model.objective ~mix:Ws.Tpcw.shopping () in
  let configs = distinct_configs obj.Objective.space ~count:64 ~seed:42 in
  let i = ref 0 in
  measure ~warmup:200 ~calls:20_000 ~per_call:1 (fun () ->
      let c = configs.(!i land 63) in
      incr i;
      ignore (obj.Objective.eval c : float))

let des_options =
  {
    Ws.Simulation.default_options with
    Ws.Simulation.warmup_ms = 1_000.0;
    horizon_ms = 5_000.0;
  }

let des_figures () =
  let obj = Ws.Simulation.objective ~options:des_options ~mix:Ws.Tpcw.shopping () in
  let configs = distinct_configs obj.Objective.space ~count:8 ~seed:42 in
  let i = ref 0 in
  measure ~warmup:3 ~calls:40 ~per_call:1 (fun () ->
      let c = configs.(!i land 7) in
      incr i;
      ignore (obj.Objective.eval c : float))

(* The batch+memo engine on a tuning-shaped stream: 64 distinct
   configurations, each occurring 8 times, interleaved the way a
   simplex revisits vertices.  One eval_batch per fresh cached
   objective — 64 distinct misses fan out across the pool, the other
   448 evaluations answer from the single memo pass. *)
let batch_figures ?pool () =
  let base = Ws.Model.objective ~mix:Ws.Tpcw.shopping () in
  let distinct = distinct_configs base.Objective.space ~count:64 ~seed:42 in
  let stream =
    Array.init (64 * 8) (fun i -> distinct.((i * 13) land 63))
  in
  measure ~warmup:5 ~calls:200 ~per_call:(Array.length stream) (fun () ->
      let obj = Objective.cached base in
      ignore (Objective.eval_batch ?pool obj stream : float array))

(* Same tuning-shaped stream over the simulation objective: 8
   distinct configurations x 8 occurrences.  Only the 8 distinct
   misses run a simulation; the engine's single memo pass answers the
   other 56 evaluations, which is where a tuner's effective
   evaluation throughput comes from. *)
let des_batch_figures ?pool () =
  let base = Ws.Simulation.objective ~options:des_options ~mix:Ws.Tpcw.shopping () in
  let distinct = distinct_configs base.Objective.space ~count:8 ~seed:42 in
  let stream = Array.init (8 * 8) (fun i -> distinct.((i * 5) land 7)) in
  measure ~warmup:1 ~calls:6 ~per_call:(Array.length stream) (fun () ->
      let obj = Objective.cached base in
      ignore (Objective.eval_batch ?pool obj stream : float array))

(* ------------------------------------------------------------------ *)
(* Baseline check                                                      *)

(* Minimal extraction of ["key": <number>] from the flat baseline
   files this tool writes itself — not a general JSON parser. *)
let json_number ~key text =
  let needle = Printf.sprintf "\"%s\"" key in
  let nlen = String.length needle and tlen = String.length text in
  let rec find i =
    if i + nlen > tlen then None
    else if String.sub text i nlen = needle then Some (i + nlen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
      let i = ref start in
      while
        !i < tlen && (text.[!i] = ' ' || text.[!i] = ':' || text.[!i] = '\n')
      do
        incr i
      done;
      let b = Buffer.create 24 in
      while
        !i < tlen
        &&
        match text.[!i] with
        | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true
        | _ -> false
      do
        Buffer.add_char b text.[!i];
        incr i
      done;
      float_of_string_opt (Buffer.contents b)

let baseline_json ~mva ~des ~batch ~des_batch =
  Printf.sprintf
    "{\n\
    \  \"mva_words_per_eval\": %.1f,\n\
    \  \"mva_evals_per_sec\": %.0f,\n\
    \  \"des_words_per_eval\": %.1f,\n\
    \  \"des_evals_per_sec\": %.0f,\n\
    \  \"batch_evals_per_sec\": %.0f,\n\
    \  \"des_batch_evals_per_sec\": %.0f\n\
     }\n"
    mva.words_per_eval mva.evals_per_sec des.words_per_eval
    des.evals_per_sec batch.evals_per_sec des_batch.evals_per_sec

let check ~baseline_file ~mva ~des =
  let text = In_channel.with_open_text baseline_file In_channel.input_all in
  let verdicts =
    List.filter_map
      (fun (label, key, measured) ->
        match json_number ~key text with
        | None ->
            Some (Printf.sprintf "%s: baseline key %s missing" label key)
        | Some recorded ->
            if measured > 2.0 *. recorded then
              Some
                (Printf.sprintf
                   "%s: %.1f minor words/eval exceeds 2x the recorded \
                    baseline %.1f"
                   label measured recorded)
            else None)
      [
        ("mva", "mva_words_per_eval", mva.words_per_eval);
        ("des", "des_words_per_eval", des.words_per_eval);
      ]
  in
  match verdicts with
  | [] -> Printf.printf "allocation check against %s: ok\n" baseline_file
  | problems ->
      List.iter (fun p -> Printf.printf "REGRESSION %s\n" p) problems;
      exit 1

(* ------------------------------------------------------------------ *)

let () =
  let check_file = ref None and write_file = ref None in
  let rec parse = function
    | [] -> ()
    | "--check" :: file :: rest ->
        check_file := Some file;
        parse rest
    | "--write-baseline" :: file :: rest ->
        write_file := Some file;
        parse rest
    | arg :: _ ->
        Printf.eprintf
          "usage: evals [--check baseline.json] [--write-baseline FILE] \
           (got %s)\n"
          arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let start = Unix.gettimeofday () in
  let telemetry =
    Telemetry.create ~clock:(fun () -> (Unix.gettimeofday () -. start) *. 1e3) ()
  in
  let timed label f = Telemetry.span telemetry ("evals." ^ label) f in
  let mva = timed "mva" mva_figures in
  let des = timed "des" des_figures in
  let jobs =
    match Sys.getenv_opt "HARMONY_JOBS" with
    | Some s -> (try max 1 (int_of_string s) with _ -> Pool.default_domains ())
    | None -> Pool.default_domains ()
  in
  let batch_seq = timed "batch-sequential" (fun () -> batch_figures ()) in
  let batch_pool, des_batch =
    Pool.with_pool ~domains:jobs (fun pool ->
        ( timed "batch-pool" (fun () -> batch_figures ~pool ()),
          timed "des-batch" (fun () -> des_batch_figures ~pool ()) ))
  in
  let row label f =
    Printf.printf "%-18s %12.1f %14.0f\n" label f.words_per_eval
      f.evals_per_sec;
    Telemetry.gauge telemetry
      (Printf.sprintf "evals.%s.words_per_eval" label)
      f.words_per_eval;
    Telemetry.gauge telemetry
      (Printf.sprintf "evals.%s.per_sec" label)
      f.evals_per_sec
  in
  Printf.printf "%-18s %12s %14s\n" "objective" "words/eval" "evals/sec";
  row "mva" mva;
  row "des" des;
  row "batch-sequential" batch_seq;
  Printf.printf "%-18s (batch of 512 = 64 distinct x 8, memo on)\n" "";
  row "batch-pool" batch_pool;
  Printf.printf "%-18s (same stream, %d domains)\n" "" jobs;
  row "des-batch" des_batch;
  Printf.printf "%-18s (batch of 64 = 8 distinct x 8, memo on, %d domains)\n"
    "" jobs;
  Out_channel.with_open_text "BENCH_6.json" (fun oc ->
      Out_channel.output_string oc (Export.chrome telemetry));
  Printf.printf "telemetry: BENCH_6.json (Chrome trace)\n";
  (match !write_file with
  | None -> ()
  | Some file ->
      Out_channel.with_open_text file (fun oc ->
          Out_channel.output_string oc
            (baseline_json ~mva ~des ~batch:batch_pool ~des_batch));
      Printf.printf "baseline written to %s\n" file);
  match !check_file with
  | None -> ()
  | Some file -> check ~baseline_file:file ~mva ~des
