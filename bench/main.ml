(* The benchmark harness, in three parts:

   1. Reproduction: regenerate every table and figure of the paper
      (the same output as `harmony_cli experiment all`).
   2. Ablations: tables quantifying the design choices called out in
      DESIGN.md (initial-simplex strategy, estimator vertex choice,
      classifier plug-ins, sensitivity repeats under noise).
   3. Micro-benchmarks: one Bechamel Test.make per paper artifact
      (how long regenerating each costs) plus the hot kernels.

   Run with: dune exec bench/main.exe
   Skip the micro-benchmarks (fast CI mode): BENCH_QUICK=1 dune exec bench/main.exe
   Evaluation domains (parallel parts): HARMONY_JOBS=N (default: the
   runtime's recommended domain count) *)

open Bechamel
open Toolkit
open Harmony
open Harmony_objective
module Ws = Harmony_webservice
module Generator = Harmony_datagen.Generator
module Rng = Harmony_numerics.Rng
module Space = Harmony_param.Space
module Rsl = Harmony_param.Rsl
module Report = Harmony_experiments.Report
module Pool = Harmony_parallel.Pool
module Telemetry = Harmony_telemetry.Telemetry
module Export = Harmony_telemetry.Export

(* Each bench part runs under its own telemetry handle with a wall
   clock (milliseconds since the part started — bin/-side clocks are
   allowed, lib/ never reads one) and leaves a Chrome trace next to
   the working directory as BENCH_<id>.json.  The handle is the same
   registry the tuning stack reports into, so a part that threads it
   down (see ablation_estimator) records real simplex/measure spans. *)
let bench_part id f =
  let start = Unix.gettimeofday () in
  let telemetry =
    Telemetry.create ~clock:(fun () -> (Unix.gettimeofday () -. start) *. 1e3) ()
  in
  let result = Telemetry.span telemetry ("bench." ^ id) (fun () -> f telemetry) in
  Telemetry.gauge telemetry "bench.wall_ms"
    ((Unix.gettimeofday () -. start) *. 1e3);
  let file = "BENCH_" ^ id ^ ".json" in
  Out_channel.with_open_text file (fun oc ->
      Out_channel.output_string oc (Export.chrome telemetry));
  result

let jobs =
  match Sys.getenv_opt "HARMONY_JOBS" with
  | Some s -> (try max 1 (int_of_string s) with _ -> Pool.default_domains ())
  | None -> Pool.default_domains ()

(* ------------------------------------------------------------------ *)
(* Part 1: the paper's tables and figures                              *)

let reproduction pool =
  Format.printf "@.############ Reproduction: every table and figure ############@.@.";
  Harmony_experiments.Registry.run_all ~pool Format.std_formatter

(* ------------------------------------------------------------------ *)
(* Part 2: ablations                                                   *)

(* 2a. Initial-simplex strategies on the web-service model.  Each
   (workload, init) arm builds its own objective and tuner, so the
   arms fan out across the pool without changing any number. *)
let ablation_init pool =
  let arms =
    List.concat_map
      (fun mix ->
        List.map
          (fun init -> (mix, init))
          [
            ("extremes", Simplex.Init.Extremes);
            ("spread", Simplex.Init.Spread);
            ("around-default", Simplex.Init.Around_default 0.25);
          ])
      [ ("shopping", Ws.Tpcw.shopping); ("ordering", Ws.Tpcw.ordering) ]
  in
  let rows =
    Pool.map pool
      (fun ((mix_label, mix), (init_label, init)) ->
        let obj = Ws.Model.objective ~mix () in
        let options =
          { Tuner.default_options with Tuner.init; max_evaluations = 150 }
        in
        let o = Tuner.tune ~options obj in
        let m = Tuner.Metrics.of_outcome ~convergence_fraction:0.02 obj o in
        [
          mix_label; init_label;
          Report.f1 m.Tuner.Metrics.performance;
          string_of_int m.Tuner.Metrics.convergence_iteration;
          Report.f1 m.Tuner.Metrics.worst_performance;
          string_of_int m.Tuner.Metrics.bad_iterations;
        ])
      arms
  in
  Report.make ~id:"ablation-init" ~title:"Initial-simplex strategy (150-eval budget)"
    ~columns:[ "workload"; "init"; "WIPS"; "convergence"; "worst WIPS"; "bad iters" ]
    ~notes:[ "spread is the paper's Section 4.1 improvement" ]
    rows

(* 2b. Estimator vertex choice: prediction error on held-out points of
   a tuning trace, in a static and a drifting environment. *)
let ablation_estimator pool telemetry =
  let obj = Ws.Model.objective ~mix:Ws.Tpcw.shopping () in
  let space = obj.Objective.space in
  (* The bench part's handle records this tune's simplex/measure spans
     directly; its evaluation batches fan out across the pool without
     changing a byte of the outcome or the trace. *)
  let outcome =
    Tuner.tune ~telemetry ~pool
      ~options:{ Tuner.default_options with Tuner.max_evaluations = 120 }
      obj
  in
  let points =
    List.map (fun e -> (e.Recorder.config, e.Recorder.performance)) outcome.Tuner.trace
  in
  (* Targets the training stage actually asks about: near-misses of
     the historical configurations (one grid neighbour away), not
     far-field extrapolations. *)
  let targets =
    List.concat_map
      (fun (c, _) -> List.filteri (fun i _ -> i < 2) (Space.neighbors space c))
      (List.filteri (fun i _ -> i mod 5 = 0) points)
  in
  let median_abs_error ~drift choice =
    (* In the drifting variant, older measurements are scaled away from
       the truth; only the recent half still reflects the system. *)
    let n = List.length points in
    let points =
      List.mapi
        (fun i (c, p) ->
          if drift && 2 * i < n then (c, 0.5 *. p) else (c, p))
        points
    in
    let errors =
      Array.of_list
        (List.map
           (fun target ->
             let est = Estimator.estimate ~choice ~space ~points ~target () in
             Float.abs (est -. obj.Objective.eval target))
           targets)
    in
    Harmony_numerics.Stats.median errors
  in
  let rows =
    List.concat_map
      (fun (env, drift) ->
        List.map
          (fun (label, choice) ->
            [ env; label; Report.f2 (median_abs_error ~drift choice) ])
          [ ("nearest", Estimator.Nearest); ("latest", Estimator.Latest) ])
      [ ("static", false); ("drifting", true) ]
  in
  Report.make ~id:"ablation-estimator"
    ~title:
      (Printf.sprintf
         "Triangulation vertex choice: median |error| on %d near-history configs"
         (List.length targets))
    ~columns:[ "environment"; "vertex choice"; "median abs error (WIPS)" ]
    ~notes:
      [
        "the paper's footnote: nearest for static environments, recent data when the environment changes";
        "latest-only degrades badly here: once tuning converges, the most recent \
points cluster and the fitted simplex collapses";
      ]
    rows

(* 2c. Data-analyzer classifier plug-ins on workload characterization. *)
let ablation_classifier () =
  let module Classifier = Harmony_ml.Classifier in
  let mixes = [| Ws.Tpcw.browsing; Ws.Tpcw.shopping; Ws.Tpcw.ordering |] in
  let rng = Rng.create 23 in
  let observe mix = Ws.Tpcw.observed_frequencies rng mix ~samples:200 in
  let training =
    let features = Array.init 60 (fun i -> observe mixes.(i mod 3)) in
    let labels = Array.init 60 (fun i -> i mod 3) in
    { Classifier.features; labels }
  in
  let held_out = Array.init 150 (fun i -> (observe mixes.(i mod 3), i mod 3)) in
  let accuracy c =
    let correct =
      Array.fold_left
        (fun acc (f, l) -> if c.Classifier.classify f = l then acc + 1 else acc)
        0 held_out
    in
    float_of_int correct /. float_of_int (Array.length held_out)
  in
  let classifiers =
    [
      Harmony_ml.Nearest.least_squares training;
      Harmony_ml.Nearest.knn ~k:5 training;
      Harmony_ml.Kmeans.classifier (Rng.create 3) ~k:3 training;
      Harmony_ml.Dtree.classifier training;
      Harmony_ml.Mlp.classifier (Rng.create 4) ~epochs:150 training;
    ]
  in
  let rows =
    List.map
      (fun c -> [ c.Classifier.name; Report.pct (accuracy c) ])
      classifiers
  in
  Report.make ~id:"ablation-classifier"
    ~title:"Workload classification accuracy (held-out TPC-W frequency vectors)"
    ~columns:[ "classifier"; "accuracy" ]
    ~notes:[ "least-squares nearest neighbour is the paper's choice (Section 4.2)" ]
    rows

(* 2d. Sensitivity repeats under measurement noise: how well the
   noisy rankings recover the noise-free top-5.  Every seed arm
   creates its own noise RNG, so the arms are pool-safe. *)
let ablation_sensitivity_repeats pool =
  let g = Generator.synthetic_webservice () in
  let clean = Generator.objective g ~workload:Generator.shopping_mix in
  let truth = Sensitivity.analyze clean in
  let top_true =
    List.filteri (fun i _ -> i < 5)
      (Array.to_list (Sensitivity.ranked truth))
    |> List.map (fun s -> s.Sensitivity.index)
  in
  (* Averaged over several noise seeds: a single draw of a max-min
     estimate is far too variable to rank designs by. *)
  let seeds = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let overlap ~level ~repeats =
    let one seed =
      let noisy =
        Objective.with_noise
          (Rng.create (seed + (1000 * repeats) + (100 * int_of_float (level *. 100.))))
          ~level clean
      in
      let r = Sensitivity.analyze ~repeats noisy in
      let top =
        List.filteri (fun i _ -> i < 5) (Array.to_list (Sensitivity.ranked r))
        |> List.map (fun s -> s.Sensitivity.index)
      in
      List.length (List.filter (fun i -> List.mem i top_true) top)
    in
    let total = List.fold_left ( + ) 0 (Pool.map pool one seeds) in
    float_of_int total /. float_of_int (List.length seeds)
  in
  let rows =
    List.concat_map
      (fun level ->
        List.map
          (fun repeats ->
            [
              Report.pct level; string_of_int repeats;
              Printf.sprintf "%.1f/5" (overlap ~level ~repeats);
            ])
          [ 1; 3; 5 ])
      [ 0.05; 0.10; 0.25 ]
  in
  Report.make ~id:"ablation-repeats"
    ~title:"Sensitivity ranking robustness: top-5 overlap with the noise-free ranking"
    ~columns:[ "perturbation"; "repeats"; "top-5 overlap" ]
    ~notes:
      [
        "repeats average repeated measurements (an extension of the paper's tool)";
        "they damp spurious sensitivity magnitudes on flat parameters, but the \
ranking loss under heavy noise is dominated by max-min selection bias";
      ]
    rows

(* 2e. The fault-tolerant measurement pipeline: convergence quality vs
   injected fault rate at a fixed seed.  Every rate arm builds its own
   faulty objective (per-configuration fault draws are seeded), so the
   arms fan out across the pool and the table is byte-identical at any
   domain count. *)
let ablation_faults pool =
  let budget = 150 in
  let tune_with ~rate =
    let g = Generator.synthetic_webservice ~seed:11 () in
    let clean = Generator.objective g ~workload:Generator.shopping_mix in
    let objective, measure =
      if Float.equal rate 0.0 then (clean, None)
      else
        ( Objective.with_faults ~rates:(Objective.fault_profile rate) ~seed:5
            clean,
          Some Measure.default_policy )
    in
    let options =
      { Tuner.default_options with Tuner.max_evaluations = budget; measure }
    in
    (Tuner.tune ~options objective, clean)
  in
  let fault_free, _ = tune_with ~rate:0.0 in
  let reference = fault_free.Tuner.best_performance in
  let rows =
    Pool.map pool
      (fun rate ->
        let outcome, clean = tune_with ~rate in
        (* Score the returned configuration on the clean objective:
           what the system would actually get by deploying it. *)
        let deployed = clean.Objective.eval outcome.Tuner.best_config in
        let m =
          Tuner.Metrics.of_outcome ~reference clean
            { outcome with Tuner.best_performance = deployed }
        in
        let s =
          Option.value outcome.Tuner.measurement ~default:Measure.no_summary
        in
        [
          Report.pct rate;
          Report.f1 deployed;
          Report.pct (deployed /. reference);
          string_of_int m.Tuner.Metrics.convergence_iteration;
          string_of_int s.Measure.faults;
          string_of_int s.Measure.retries;
          string_of_int s.Measure.give_ups;
        ])
      [ 0.0; 0.05; 0.10; 0.20; 0.40 ]
  in
  Report.make ~id:"ablation-faults"
    ~title:
      (Printf.sprintf
         "Measurement faults vs convergence (synthetic rule data, %d-eval budget, seed 5)"
         budget)
    ~columns:
      [ "fault rate"; "deployed perf"; "vs fault-free"; "convergence";
        "faults"; "retries"; "give-ups" ]
    ~notes:
      [
        "fault rate r injects transients at r, outliers at r/2, timeouts at r/4, persistent at r/8";
        "the measurement policy: 4 attempts with capped exponential backoff, \
median-of-3 with MAD outlier rejection, worst-case penalty on give-up";
      ]
    rows

(* 2f. The parallel evaluation engine itself: wall clock of the full
   experiment registry at increasing domain counts.  Output is
   byte-identical at every width (the determinism test in test/
   asserts it); only the wall clock moves. *)
let ablation_parallel () =
  let time f =
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    Unix.gettimeofday () -. t0
  in
  let baseline = ref 1.0 in
  let rows =
    List.map
      (fun domains ->
        let dt =
          time (fun () ->
              Pool.with_pool ~domains (fun pool ->
                  Harmony_experiments.Registry.tables ~pool ()))
        in
        if domains = 1 then baseline := dt;
        [
          string_of_int domains;
          Printf.sprintf "%.2f" dt;
          Printf.sprintf "%.2fx" (!baseline /. dt);
        ])
      [ 1; 2; 4 ]
  in
  Report.make ~id:"ablation-parallel"
    ~title:"Registry wall clock vs evaluation domains (experiment all)"
    ~columns:[ "domains"; "wall clock (s)"; "speedup" ]
    ~notes:
      [
        Printf.sprintf "host parallelism: Domain.recommended_domain_count = %d"
          (Pool.default_domains ());
        "speedup saturates at min(domains, cores, 11 experiments); the longest \
single experiment bounds the critical path";
      ]
    rows

let ablations pool =
  Format.printf "@.############ Ablations ############@.@.";
  List.iter
    (fun t -> Report.print Format.std_formatter t)
    [
      bench_part "ablation-init" (fun _ -> ablation_init pool);
      bench_part "ablation-estimator" (ablation_estimator pool);
      bench_part "ablation-classifier" (fun _ -> ablation_classifier ());
      bench_part "ablation-repeats" (fun _ -> ablation_sensitivity_repeats pool);
      bench_part "ablation-faults" (fun _ -> ablation_faults pool);
      bench_part "ablation-parallel" (fun _ -> ablation_parallel ());
    ];
  Format.printf "@.telemetry: BENCH_<id>.json (Chrome traces, one per ablation)@."

(* ------------------------------------------------------------------ *)
(* Part 3: Bechamel micro-benchmarks                                   *)

let experiment_tests =
  (* One Test.make per paper artifact: the cost of regenerating it.
     Reduced workloads keep a single run under ~100ms. *)
  Test.make_grouped ~name:"experiments"
    [
      Test.make ~name:"fig4"
        (Staged.stage (fun () -> ignore (Harmony_experiments.Fig4.run ~samples:500 ())));
      Test.make ~name:"fig5"
        (Staged.stage (fun () ->
             ignore (Harmony_experiments.Fig5.run ~perturbations:[| 0.0 |] ())));
      Test.make ~name:"fig6"
        (Staged.stage (fun () ->
             ignore
               (Harmony_experiments.Fig6.run ~ns:[ 5 ] ~perturbations:[ 0.0 ] ())));
      Test.make ~name:"fig7"
        (Staged.stage (fun () ->
             ignore (Harmony_experiments.Fig7.run ~distances:[ 0.2 ] ())));
      Test.make ~name:"fig8"
        (Staged.stage (fun () -> ignore (Harmony_experiments.Fig8.run ())));
      Test.make ~name:"fig9"
        (Staged.stage (fun () -> ignore (Harmony_experiments.Fig9.run ~ns:[ 3 ] ())));
      Test.make ~name:"table1"
        (Staged.stage (fun () ->
             ignore (Harmony_experiments.Table1.run ~max_evaluations:60 ())));
      Test.make ~name:"table2"
        (Staged.stage (fun () ->
             ignore (Harmony_experiments.Table2.run ~max_evaluations:60 ())));
      Test.make ~name:"fig10"
        (Staged.stage (fun () -> ignore (Harmony_experiments.Fig10.run ())));
      Test.make ~name:"restriction"
        (Staged.stage (fun () ->
             ignore (Harmony_experiments.Restriction.run ~max_evaluations:60 ())));
      Test.make ~name:"headline"
        (Staged.stage (fun () ->
             ignore (Harmony_experiments.Headline.run ~max_evaluations:60 ())));
    ]

let kernel_tests =
  let model_obj = Ws.Model.objective ~mix:Ws.Tpcw.shopping () in
  let default_config = Ws.Wsconfig.to_config Ws.Wsconfig.default in
  let sim_options =
    { Ws.Simulation.default_options with
      Ws.Simulation.warmup_ms = 1_000.0; horizon_ms = 5_000.0 }
  in
  let g = Generator.synthetic_webservice () in
  let datagen_obj = Generator.objective g ~workload:Generator.shopping_mix in
  let datagen_defaults = Space.defaults (Generator.space g) in
  let spec =
    Rsl.parse "{ harmonyBundle B { int {1 8 1} }}\n{ harmonyBundle C { int {1 9-$B 1} }}"
  in
  let trace_points =
    let outcome =
      Tuner.tune ~options:{ Tuner.default_options with Tuner.max_evaluations = 60 } model_obj
    in
    List.map (fun e -> (e.Recorder.config, e.Recorder.performance)) outcome.Tuner.trace
  in
  Test.make_grouped ~name:"kernels"
    [
      Test.make ~name:"model-eval"
        (Staged.stage (fun () -> ignore (model_obj.Objective.eval default_config)));
      Test.make ~name:"sim-5s"
        (Staged.stage (fun () ->
             ignore
               (Ws.Simulation.run ~options:sim_options Ws.Wsconfig.default
                  ~mix:Ws.Tpcw.shopping)));
      Test.make ~name:"datagen-eval"
        (Staged.stage (fun () -> ignore (datagen_obj.Objective.eval datagen_defaults)));
      Test.make ~name:"simplex-60-evals"
        (Staged.stage (fun () ->
             ignore
               (Tuner.tune
                  ~options:{ Tuner.default_options with Tuner.max_evaluations = 60 }
                  model_obj)));
      Test.make ~name:"sensitivity-model"
        (Staged.stage (fun () -> ignore (Sensitivity.analyze model_obj)));
      Test.make ~name:"estimator-fit"
        (Staged.stage (fun () ->
             ignore
               (Estimator.estimate ~space:Ws.Wsconfig.space ~points:trace_points
                  ~target:default_config ())));
      Test.make ~name:"rsl-count"
        (Staged.stage (fun () -> ignore (Rsl.feasible_count spec)));
      Test.make ~name:"matmul-32-blocked"
        (Staged.stage (fun () ->
             ignore
               (Harmony_cachesim.Matmul.run ~m:32 ~n:32 ~k:32 ~mb:8 ~nb:8 ~kb:8 ())));
      Test.make ~name:"controller-session-20"
        (Staged.stage (fun () ->
             let c =
               Controller.create
                 ~options:{ Simplex.default_options with Simplex.max_evaluations = 20 }
                 ~space:Ws.Wsconfig.space
                 ~direction:Objective.Higher_is_better ()
             in
             let rec drive () =
               match Controller.pending c with
               | `Measure config ->
                   Controller.report c
                     (Ws.Model.wips (Ws.Wsconfig.of_config config) ~mix:Ws.Tpcw.shopping);
                   drive ()
               | `Done _ -> ()
             in
             drive ()));
    ]

let run_benchmarks tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false
      ~predictors:[| Bechamel.Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.3) ~stabilize:false
      ~kde:(Some 500) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  match Analyze.merge ols instances results with
  | results ->
      (* Flat textual rendering: name, ns/run. *)
      let rows = ref [] in
      Hashtbl.iter
        (fun _responder per_test ->
          Hashtbl.iter
            (fun name ols ->
              let est =
                match Analyze.OLS.estimates ols with
                | Some (x :: _) -> x
                | Some [] | None -> nan
              in
              rows := (name, est) :: !rows)
            per_test)
        results;
      let rows =
        List.sort
          (fun (a, x) (b, y) ->
            match String.compare a b with 0 -> Float.compare x y | c -> c)
          !rows
      in
      Format.printf "%-40s %16s@." "benchmark" "time/run";
      Format.printf "%s@." (String.make 57 '-');
      List.iter
        (fun (name, ns) ->
          let human =
            if Float.is_nan ns then "n/a"
            else if ns > 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
            else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
            else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
            else Printf.sprintf "%8.2f ns" ns
          in
          Format.printf "%-40s %16s@." name human)
        rows

let microbenchmarks () =
  Format.printf "@.############ Micro-benchmarks (Bechamel) ############@.@.";
  run_benchmarks experiment_tests;
  Format.printf "@.";
  run_benchmarks kernel_tests

let () =
  Pool.with_pool ~domains:jobs (fun pool ->
      reproduction pool;
      ablations pool);
  if Sys.getenv_opt "BENCH_QUICK" = None then microbenchmarks ()
  else Format.printf "@.(BENCH_QUICK set: micro-benchmarks skipped)@."
