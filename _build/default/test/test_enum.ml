open Harmony
open Harmony_objective
module Param = Harmony_param.Param
module Space = Harmony_param.Space
module Enum = Harmony_param.Enum

let algorithms = [ "heap-sort"; "quick-sort"; "merge-sort" ]

let test_param_shape () =
  let p = Enum.param ~name:"algorithm" algorithms in
  Alcotest.(check int) "one value per label" 3 (Param.num_values p);
  Alcotest.(check (float 1e-12)) "default first" 0.0 p.Param.default

let test_param_default () =
  let p = Enum.param ~name:"algorithm" ~default:"merge-sort" algorithms in
  Alcotest.(check (float 1e-12)) "default index" 2.0 p.Param.default

let test_param_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Enum: empty label list")
    (fun () -> ignore (Enum.param ~name:"x" []));
  Alcotest.check_raises "dup" (Invalid_argument "Enum: duplicate labels")
    (fun () -> ignore (Enum.param ~name:"x" [ "a"; "a" ]));
  Alcotest.check_raises "unknown default"
    (Invalid_argument "Enum.param: unknown default z") (fun () ->
      ignore (Enum.param ~name:"x" ~default:"z" [ "a"; "b" ]))

let test_roundtrip () =
  List.iter
    (fun label ->
      Alcotest.(check string) "label roundtrip" label
        (Enum.label_of algorithms (Enum.value_of algorithms label)))
    algorithms

let test_label_of_clamps () =
  Alcotest.(check string) "below" "heap-sort" (Enum.label_of algorithms (-4.0));
  Alcotest.(check string) "above" "merge-sort" (Enum.label_of algorithms 99.0);
  Alcotest.(check string) "rounds" "quick-sort" (Enum.label_of algorithms 1.4)

let test_value_of_missing () =
  Alcotest.check_raises "missing" Not_found (fun () ->
      ignore (Enum.value_of algorithms "bogo-sort"))

let test_tune_over_algorithm_choice () =
  (* The paper's Section 2 scenario: the tuner picks an algorithm and
     a threshold jointly. quick-sort is best unless the cutoff is
     tiny. *)
  let space =
    Space.create
      [
        Enum.param ~name:"algorithm" algorithms;
        Param.int_range ~name:"cutoff" ~lo:1 ~hi:64 ~default:8 ();
      ]
  in
  let cost c =
    let penalty =
      match Enum.label_of algorithms c.(0) with
      | "quick-sort" -> 10.0
      | "merge-sort" -> 14.0
      | _ -> 20.0
    in
    penalty +. (abs_float (c.(1) -. 16.0) /. 8.0)
  in
  let obj = Objective.create ~space ~direction:Objective.Lower_is_better cost in
  let outcome = Tuner.tune obj in
  Alcotest.(check string) "picks quick-sort" "quick-sort"
    (Enum.label_of algorithms outcome.Tuner.best_config.(0));
  Alcotest.(check bool) "tunes the cutoff near its optimum" true
    (Float.abs (outcome.Tuner.best_config.(1) -. 16.0) <= 4.0)

let suite =
  [
    Alcotest.test_case "param shape" `Quick test_param_shape;
    Alcotest.test_case "param default" `Quick test_param_default;
    Alcotest.test_case "param invalid" `Quick test_param_invalid;
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "label clamps" `Quick test_label_of_clamps;
    Alcotest.test_case "value missing" `Quick test_value_of_missing;
    Alcotest.test_case "tune algorithm choice" `Quick test_tune_over_algorithm_choice;
  ]
