open Harmony_objective
module Param = Harmony_param.Param
module Space = Harmony_param.Space

let space = Space.create [ Param.int_range ~name:"x" ~lo:0 ~hi:10 ~default:0 () ]
let obj = Objective.create ~space ~direction:Objective.Higher_is_better (fun c -> c.(0))

let test_records_in_order () =
  let r, wrapped = Recorder.wrap obj in
  ignore (wrapped.Objective.eval [| 1.0 |]);
  ignore (wrapped.Objective.eval [| 3.0 |]);
  ignore (wrapped.Objective.eval [| 2.0 |]);
  Alcotest.(check int) "count" 3 (Recorder.count r);
  Alcotest.(check (array (float 1e-12)))
    "order preserved" [| 1.0; 3.0; 2.0 |] (Recorder.performances r);
  let indices = List.map (fun e -> e.Recorder.index) (Recorder.entries r) in
  Alcotest.(check (list int)) "indices" [ 0; 1; 2 ] indices

let test_passthrough_value () =
  let _, wrapped = Recorder.wrap obj in
  Alcotest.(check (float 1e-12)) "same value" 7.0 (wrapped.Objective.eval [| 7.0 |])

let test_config_copied () =
  let r, wrapped = Recorder.wrap obj in
  let c = [| 5.0 |] in
  ignore (wrapped.Objective.eval c);
  c.(0) <- 9.0;
  let e = List.hd (Recorder.entries r) in
  Alcotest.(check (float 1e-12)) "copied at record time" 5.0 e.Recorder.config.(0)

let test_best () =
  let r, wrapped = Recorder.wrap obj in
  Alcotest.(check bool) "empty" true (Recorder.best obj r = None);
  ignore (wrapped.Objective.eval [| 1.0 |]);
  ignore (wrapped.Objective.eval [| 8.0 |]);
  ignore (wrapped.Objective.eval [| 8.0 |]);
  ignore (wrapped.Objective.eval [| 4.0 |]);
  match Recorder.best obj r with
  | None -> Alcotest.fail "expected a best entry"
  | Some e ->
      Alcotest.(check (float 1e-12)) "best perf" 8.0 e.Recorder.performance;
      (* Tie broken towards the earliest. *)
      Alcotest.(check int) "earliest" 1 e.Recorder.index

let test_lookup () =
  let r, wrapped = Recorder.wrap obj in
  ignore (wrapped.Objective.eval [| 2.0 |]);
  Alcotest.(check (option (float 1e-12))) "hit" (Some 2.0) (Recorder.lookup r [| 2.0 |]);
  Alcotest.(check (option (float 1e-12))) "miss" None (Recorder.lookup r [| 3.0 |])

let test_clear () =
  let r, wrapped = Recorder.wrap obj in
  ignore (wrapped.Objective.eval [| 2.0 |]);
  Recorder.clear r;
  Alcotest.(check int) "cleared" 0 (Recorder.count r);
  Alcotest.(check bool) "no entries" true (Recorder.entries r = [])

let suite =
  [
    Alcotest.test_case "records in order" `Quick test_records_in_order;
    Alcotest.test_case "passthrough value" `Quick test_passthrough_value;
    Alcotest.test_case "config copied" `Quick test_config_copied;
    Alcotest.test_case "best" `Quick test_best;
    Alcotest.test_case "lookup" `Quick test_lookup;
    Alcotest.test_case "clear" `Quick test_clear;
  ]
