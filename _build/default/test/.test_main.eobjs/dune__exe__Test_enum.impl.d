test/test_enum.ml: Alcotest Array Float Harmony Harmony_objective Harmony_param List Objective Tuner
