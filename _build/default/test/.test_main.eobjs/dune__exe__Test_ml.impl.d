test/test_ml.ml: Alcotest Array Classifier Dtree Float Harmony_ml Harmony_numerics Kmeans List Mlp Nearest QCheck2 QCheck_alcotest
