test/test_estimator.ml: Alcotest Array Estimator Float Harmony Harmony_param List
