test/test_tpcw.ml: Alcotest Array Float Harmony_numerics Harmony_webservice Hashtbl List Option
