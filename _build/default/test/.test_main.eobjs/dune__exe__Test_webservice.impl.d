test/test_webservice.ml: Alcotest Array Effects Float Harmony_numerics Harmony_objective Harmony_param Harmony_webservice List Model Printf QCheck2 QCheck_alcotest Simulation Tpcw Wsconfig
