test/test_stats.ml: Alcotest Array Harmony_numerics List QCheck2 QCheck_alcotest
