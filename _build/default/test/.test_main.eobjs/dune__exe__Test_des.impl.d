test/test_des.ml: Alcotest Float Harmony_des Harmony_numerics List QCheck2 QCheck_alcotest
