test/test_param.ml: Alcotest Float Harmony_param List QCheck2 QCheck_alcotest
