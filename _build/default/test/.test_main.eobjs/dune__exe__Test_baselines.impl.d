test/test_baselines.ml: Alcotest Array Baselines Float Harmony Harmony_numerics Harmony_objective Harmony_param Objective Testbed
