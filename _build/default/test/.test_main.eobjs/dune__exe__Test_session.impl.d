test/test_session.ml: Alcotest Array Filename Fun Harmony Harmony_objective Harmony_param History Objective Session Sys Tuner
