test/test_lstsq.ml: Alcotest Array Float Harmony_numerics List QCheck2 QCheck_alcotest
