test/test_recorder.ml: Alcotest Array Harmony_objective Harmony_param List Objective Recorder
