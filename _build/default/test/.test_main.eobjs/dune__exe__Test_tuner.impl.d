test/test_tuner.ml: Alcotest Array Float Harmony Harmony_objective Harmony_param List Objective Recorder Simplex String Testbed Tuner
