test/test_rng.ml: Alcotest Array Float Fun Harmony_numerics
