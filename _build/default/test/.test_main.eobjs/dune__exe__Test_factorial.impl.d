test/test_factorial.ml: Alcotest Array Factorial Harmony Harmony_objective Harmony_param List Objective Printf
