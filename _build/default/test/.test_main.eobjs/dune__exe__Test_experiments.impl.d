test/test_experiments.ml: Alcotest Array Fig10 Fig4 Fig5 Fig6 Fig7 Fig8 Fig9 Float Harmony_experiments Headline List Registry Report Restriction String Table1 Table2
