test/test_space.ml: Alcotest Float Harmony_numerics Harmony_param Hashtbl List Printf QCheck2 QCheck_alcotest Seq
