test/test_matrix.ml: Alcotest Array Float Harmony_numerics QCheck2 QCheck_alcotest
