test/test_controller.ml: Alcotest Array Controller Harmony Harmony_objective Harmony_param List Objective Printf Simplex
