test/test_rsl.ml: Alcotest Array Fun Harmony_experiments Harmony_numerics Harmony_param List Printf QCheck2 QCheck_alcotest Seq
