test/test_objective.ml: Alcotest Array Harmony_numerics Harmony_objective Harmony_param Objective
