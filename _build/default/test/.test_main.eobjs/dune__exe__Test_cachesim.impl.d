test/test_cachesim.ml: Alcotest Cache Harmony Harmony_cachesim List Matmul QCheck2 QCheck_alcotest
