test/test_analyzer.ml: Alcotest Analyzer Array Harmony Harmony_numerics Harmony_objective Harmony_param History List Objective Printf Simplex Tuner
