test/test_generator.ml: Alcotest Array Harmony Harmony_datagen Harmony_numerics Harmony_objective Harmony_param Objective Seq
