test/test_simplex.ml: Alcotest Array Float Harmony Harmony_objective Harmony_param List Objective Printf QCheck2 QCheck_alcotest Simplex Testbed
