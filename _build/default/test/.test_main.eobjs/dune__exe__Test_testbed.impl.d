test/test_testbed.ml: Alcotest Harmony_objective Harmony_param Objective Testbed
