test/test_subspace.ml: Alcotest Array Harmony Harmony_objective Harmony_param Objective Subspace Tuner
