test/test_rules.ml: Alcotest Array Harmony_datagen
