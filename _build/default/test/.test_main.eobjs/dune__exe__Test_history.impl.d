test/test_history.ml: Alcotest Array Filename Fun Harmony Harmony_numerics Harmony_objective Harmony_param History List Objective Sys Tuner
