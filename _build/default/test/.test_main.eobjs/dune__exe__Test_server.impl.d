test/test_server.ml: Alcotest Array Harmony Harmony_param List Server Simplex String
