module Tpcw = Harmony_webservice.Tpcw
module Rng = Harmony_numerics.Rng

let test_fourteen_interactions () =
  Alcotest.(check int) "count" 14 (Array.length Tpcw.all)

let test_names_distinct () =
  let names = Array.to_list (Array.map Tpcw.name Tpcw.all) in
  Alcotest.(check int) "distinct" 14 (List.length (List.sort_uniq compare names))

let test_categories () =
  Alcotest.(check bool) "home browses" true (Tpcw.category Tpcw.Home = Tpcw.Browse);
  Alcotest.(check bool) "buy orders" true (Tpcw.category Tpcw.Buy_confirm = Tpcw.Order);
  let browse =
    Array.to_list Tpcw.all |> List.filter (fun i -> Tpcw.category i = Tpcw.Browse)
  in
  Alcotest.(check int) "six browse interactions" 6 (List.length browse)

let mixes = [ Tpcw.browsing; Tpcw.shopping; Tpcw.ordering ]

let test_mix_weights_normalized () =
  List.iter
    (fun mix ->
      let total = Array.fold_left (fun acc w -> acc +. w) 0.0 (Tpcw.frequency_vector mix) in
      Alcotest.(check (float 1e-9)) (mix.Tpcw.label ^ " sums to 1") 1.0 total)
    mixes

let test_browse_fractions_ordering () =
  (* The defining property of the three mixes: browsing ~95%,
     shopping ~80%, ordering ~50% browse-category weight. *)
  let b = Tpcw.browse_fraction Tpcw.browsing in
  let s = Tpcw.browse_fraction Tpcw.shopping in
  let o = Tpcw.browse_fraction Tpcw.ordering in
  Alcotest.(check bool) "browsing ~0.95" true (Float.abs (b -. 0.95) < 0.01);
  Alcotest.(check bool) "shopping ~0.80" true (Float.abs (s -. 0.80) < 0.01);
  Alcotest.(check bool) "ordering ~0.50" true (Float.abs (o -. 0.50) < 0.01)

let test_mix_of_label () =
  Alcotest.(check string) "roundtrip" "shopping" (Tpcw.mix_of_label "shopping").Tpcw.label;
  Alcotest.check_raises "unknown" (Invalid_argument "Tpcw.mix_of_label: unknown mix nope")
    (fun () -> ignore (Tpcw.mix_of_label "nope"))

let test_sample_follows_weights () =
  let rng = Rng.create 8 in
  let n = 50_000 in
  let home = ref 0 in
  for _ = 1 to n do
    if Tpcw.sample rng Tpcw.shopping = Tpcw.Home then incr home
  done;
  let freq = float_of_int !home /. float_of_int n in
  Alcotest.(check bool) "home ~16%" true (Float.abs (freq -. 0.16) < 0.01)

let test_observed_frequencies () =
  let rng = Rng.create 9 in
  let obs = Tpcw.observed_frequencies rng Tpcw.ordering ~samples:50_000 in
  let expected = Tpcw.frequency_vector Tpcw.ordering in
  Array.iteri
    (fun i e ->
      Alcotest.(check bool) "close to mix" true (Float.abs (obs.(i) -. e) < 0.01))
    expected;
  Alcotest.(check (float 1e-9))
    "sums to 1" 1.0
    (Array.fold_left ( +. ) 0.0 obs)

let test_observed_invalid () =
  Alcotest.check_raises "no samples"
    (Invalid_argument "Tpcw.observed_frequencies: samples <= 0") (fun () ->
      ignore (Tpcw.observed_frequencies (Rng.create 1) Tpcw.shopping ~samples:0))

let test_sample_next_stationary () =
  (* The category-persistent chain must keep the mix's stationary
     distribution exactly (by construction). *)
  let rng = Rng.create 21 in
  let n = 60_000 in
  let counts = Hashtbl.create 16 in
  let prev = ref None in
  for _ = 1 to n do
    let i = Tpcw.sample_next rng Tpcw.shopping ~persistence:0.7 ~previous:!prev in
    prev := Some i;
    Hashtbl.replace counts i (1 + Option.value ~default:0 (Hashtbl.find_opt counts i))
  done;
  Array.iteri
    (fun idx i ->
      let freq =
        float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts i))
        /. float_of_int n
      in
      let expected = (Tpcw.frequency_vector Tpcw.shopping).(idx) in
      Alcotest.(check bool)
        (Tpcw.name i ^ " stationary")
        true
        (Float.abs (freq -. expected) < 0.015))
    Tpcw.all

let test_sample_next_persists_categories () =
  (* Consecutive interactions share a category far more often under
     persistence than under independent draws. *)
  let same_category_rate persistence seed =
    let rng = Rng.create seed in
    let prev = ref None in
    let same = ref 0 and total = ref 0 in
    for _ = 1 to 20_000 do
      let i = Tpcw.sample_next rng Tpcw.ordering ~persistence ~previous:!prev in
      (match !prev with
      | Some p when Tpcw.category p = Tpcw.category i -> incr same
      | Some _ -> ()
      | None -> decr total);
      incr total;
      prev := Some i
    done;
    float_of_int !same /. float_of_int !total
  in
  Alcotest.(check bool) "persistence raises category runs" true
    (same_category_rate 0.8 3 > same_category_rate 0.0 4 +. 0.2)

let test_sample_next_invalid () =
  Alcotest.check_raises "persistence range"
    (Invalid_argument "Tpcw.sample_next: persistence must be in [0, 1)") (fun () ->
      ignore
        (Tpcw.sample_next (Rng.create 1) Tpcw.shopping ~persistence:1.0 ~previous:None))

let test_demands_positive () =
  Array.iter
    (fun i ->
      let d = Tpcw.demand i in
      Alcotest.(check bool) "app time positive" true (d.Tpcw.app_ms > 0.0);
      Alcotest.(check bool) "response positive" true (d.Tpcw.response_kb > 0.0);
      Alcotest.(check bool) "db nonneg" true (d.Tpcw.db_ms >= 0.0))
    Tpcw.all

let test_writes_are_order_side () =
  Array.iter
    (fun i ->
      let d = Tpcw.demand i in
      if d.Tpcw.db_write_ms > 0.0 then
        Alcotest.(check bool) "writers are Order category" true
          (Tpcw.category i = Tpcw.Order))
    Tpcw.all

let test_fraction_monotonicity () =
  (* Ordering mixes write more and cache less. *)
  Alcotest.(check bool) "write fraction grows" true
    (Tpcw.write_fraction Tpcw.ordering > Tpcw.write_fraction Tpcw.shopping);
  Alcotest.(check bool) "cacheable fraction falls" true
    (Tpcw.cacheable_fraction Tpcw.ordering < Tpcw.cacheable_fraction Tpcw.shopping)

let test_mean_demand_weighted () =
  let d = Tpcw.mean_demand Tpcw.shopping in
  (* Between the lightest and heaviest single interactions. *)
  Alcotest.(check bool) "app in range" true (d.Tpcw.app_ms > 50.0 && d.Tpcw.app_ms < 150.0)

let suite =
  [
    Alcotest.test_case "fourteen interactions" `Quick test_fourteen_interactions;
    Alcotest.test_case "names distinct" `Quick test_names_distinct;
    Alcotest.test_case "categories" `Quick test_categories;
    Alcotest.test_case "mix weights normalized" `Quick test_mix_weights_normalized;
    Alcotest.test_case "browse fractions" `Quick test_browse_fractions_ordering;
    Alcotest.test_case "mix of label" `Quick test_mix_of_label;
    Alcotest.test_case "sample follows weights" `Slow test_sample_follows_weights;
    Alcotest.test_case "observed frequencies" `Slow test_observed_frequencies;
    Alcotest.test_case "observed invalid" `Quick test_observed_invalid;
    Alcotest.test_case "sample_next stationary" `Slow test_sample_next_stationary;
    Alcotest.test_case "sample_next persists" `Slow test_sample_next_persists_categories;
    Alcotest.test_case "sample_next invalid" `Quick test_sample_next_invalid;
    Alcotest.test_case "demands positive" `Quick test_demands_positive;
    Alcotest.test_case "writers are order-side" `Quick test_writes_are_order_side;
    Alcotest.test_case "fraction monotonicity" `Quick test_fraction_monotonicity;
    Alcotest.test_case "mean demand weighted" `Quick test_mean_demand_weighted;
  ]
