module Param = Harmony_param.Param

let feq = Alcotest.(check (float 1e-9))

let p = Param.make ~name:"p" ~min_value:2.0 ~max_value:10.0 ~step:2.0 ~default:4.0

let test_make_fields () =
  Alcotest.(check string) "name" "p" p.Param.name;
  feq "min" 2.0 p.Param.min_value;
  feq "max" 10.0 p.Param.max_value;
  feq "default" 4.0 p.Param.default

let test_make_snaps_default () =
  let q = Param.make ~name:"q" ~min_value:0.0 ~max_value:10.0 ~step:2.0 ~default:5.0 in
  (* 5.0 is off-grid; snapped to the nearest even value. *)
  Alcotest.(check bool) "snapped" true (q.Param.default = 4.0 || q.Param.default = 6.0)

let test_make_invalid () =
  Alcotest.check_raises "max < min" (Invalid_argument "Param.make: max < min")
    (fun () ->
      ignore (Param.make ~name:"x" ~min_value:5.0 ~max_value:1.0 ~step:1.0 ~default:1.0));
  Alcotest.check_raises "bad step" (Invalid_argument "Param.make: step <= 0")
    (fun () ->
      ignore (Param.make ~name:"x" ~min_value:0.0 ~max_value:1.0 ~step:0.0 ~default:0.0));
  Alcotest.check_raises "default oob"
    (Invalid_argument "Param.make: default out of range") (fun () ->
      ignore (Param.make ~name:"x" ~min_value:0.0 ~max_value:1.0 ~step:1.0 ~default:2.0))

let test_int_range () =
  let q = Param.int_range ~name:"q" ~lo:1 ~hi:10 ~default:5 () in
  Alcotest.(check int) "num values" 10 (Param.num_values q);
  feq "default" 5.0 q.Param.default

let test_num_values () =
  Alcotest.(check int) "count" 5 (Param.num_values p);
  let single = Param.make ~name:"s" ~min_value:3.0 ~max_value:3.0 ~step:1.0 ~default:3.0 in
  Alcotest.(check int) "single point" 1 (Param.num_values single)

let test_values () =
  Alcotest.(check (array (float 1e-9)))
    "grid" [| 2.0; 4.0; 6.0; 8.0; 10.0 |] (Param.values p)

let test_value_at_bounds () =
  feq "first" 2.0 (Param.value_at p 0);
  feq "last" 10.0 (Param.value_at p 4);
  Alcotest.check_raises "oob" (Invalid_argument "Param.value_at: out of range")
    (fun () -> ignore (Param.value_at p 5))

let test_clamp () =
  feq "below" 2.0 (Param.clamp p 0.0);
  feq "above" 10.0 (Param.clamp p 99.0);
  feq "inside" 5.0 (Param.clamp p 5.0)

let test_snap () =
  feq "rounds down" 4.0 (Param.snap p 4.9);
  feq "rounds up" 6.0 (Param.snap p 5.1);
  feq "clamps then snaps" 2.0 (Param.snap p (-100.0));
  feq "top" 10.0 (Param.snap p 100.0)

let test_index_of () =
  Alcotest.(check int) "exact" 2 (Param.index_of p 6.0);
  Alcotest.(check int) "nearest" 2 (Param.index_of p 6.3);
  Alcotest.(check int) "clamped" 4 (Param.index_of p 42.0)

let test_is_valid () =
  Alcotest.(check bool) "on grid" true (Param.is_valid p 8.0);
  Alcotest.(check bool) "off grid" false (Param.is_valid p 5.0);
  Alcotest.(check bool) "out of range" false (Param.is_valid p 12.0)

let test_normalize_denormalize () =
  feq "min -> 0" 0.0 (Param.normalize p 2.0);
  feq "max -> 1" 1.0 (Param.normalize p 10.0);
  feq "mid" 0.5 (Param.normalize p 6.0);
  feq "round trip" 6.0 (Param.denormalize p (Param.normalize p 6.0))

let test_normalize_degenerate () =
  let single = Param.make ~name:"s" ~min_value:3.0 ~max_value:3.0 ~step:1.0 ~default:3.0 in
  feq "degenerate" 0.0 (Param.normalize single 3.0)

(* Properties *)

let param_gen =
  QCheck2.Gen.(
    let* lo = int_range (-50) 50 in
    let* span = int_range 1 100 in
    let* step = int_range 1 7 in
    return
      (Param.make ~name:"g" ~min_value:(float_of_int lo)
         ~max_value:(float_of_int (lo + span))
         ~step:(float_of_int step) ~default:(float_of_int lo)))

let prop_snap_valid =
  QCheck2.Test.make ~name:"snap yields a valid value" ~count:300
    QCheck2.Gen.(pair param_gen (float_range (-200.0) 200.0))
    (fun (q, v) -> Param.is_valid q (Param.snap q v))

let prop_snap_idempotent =
  QCheck2.Test.make ~name:"snap is idempotent" ~count:300
    QCheck2.Gen.(pair param_gen (float_range (-200.0) 200.0))
    (fun (q, v) ->
      let s = Param.snap q v in
      Float.abs (Param.snap q s -. s) < 1e-9)

let prop_value_at_index_roundtrip =
  QCheck2.Test.make ~name:"index_of (value_at i) = i" ~count:300
    QCheck2.Gen.(pair param_gen (int_range 0 1000))
    (fun (q, i) ->
      let i = i mod Param.num_values q in
      Param.index_of q (Param.value_at q i) = i)

let suite =
  [
    Alcotest.test_case "fields" `Quick test_make_fields;
    Alcotest.test_case "snaps default" `Quick test_make_snaps_default;
    Alcotest.test_case "make invalid" `Quick test_make_invalid;
    Alcotest.test_case "int_range" `Quick test_int_range;
    Alcotest.test_case "num_values" `Quick test_num_values;
    Alcotest.test_case "values" `Quick test_values;
    Alcotest.test_case "value_at bounds" `Quick test_value_at_bounds;
    Alcotest.test_case "clamp" `Quick test_clamp;
    Alcotest.test_case "snap" `Quick test_snap;
    Alcotest.test_case "index_of" `Quick test_index_of;
    Alcotest.test_case "is_valid" `Quick test_is_valid;
    Alcotest.test_case "normalize denormalize" `Quick test_normalize_denormalize;
    Alcotest.test_case "normalize degenerate" `Quick test_normalize_degenerate;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_snap_valid; prop_snap_idempotent; prop_value_at_index_roundtrip ]
