module Rules = Harmony_datagen.Rules

let ranges2 = [| (0.0, 10.0); (0.0, 10.0) |]

let rule conditions performance = { Rules.conditions; performance }
let cond var lo hi = { Rules.var; lo; hi }

let two_rules =
  Rules.create ~num_vars:2 ~ranges:ranges2
    [
      rule [ cond 0 0.0 4.9 ] 10.0;
      rule [ cond 0 5.0 10.0; cond 1 0.0 5.0 ] 20.0;
    ]

let test_create_validation () =
  Alcotest.check_raises "bad var"
    (Invalid_argument "Rules.create: condition variable out of range") (fun () ->
      ignore (Rules.create ~num_vars:1 ~ranges:[| (0.0, 1.0) |] [ rule [ cond 3 0.0 1.0 ] 1.0 ]));
  Alcotest.check_raises "lo > hi"
    (Invalid_argument "Rules.create: condition lo > hi") (fun () ->
      ignore (Rules.create ~num_vars:1 ~ranges:[| (0.0, 1.0) |] [ rule [ cond 0 1.0 0.0 ] 1.0 ]));
  Alcotest.check_raises "ranges arity" (Invalid_argument "Rules.create: ranges arity")
    (fun () -> ignore (Rules.create ~num_vars:2 ~ranges:[| (0.0, 1.0) |] []))

let test_satisfies () =
  let r = rule [ cond 0 2.0 4.0; cond 1 0.0 1.0 ] 5.0 in
  Alcotest.(check bool) "inside" true (Rules.satisfies r [| 3.0; 0.5 |]);
  Alcotest.(check bool) "boundary" true (Rules.satisfies r [| 2.0; 1.0 |]);
  Alcotest.(check bool) "outside" false (Rules.satisfies r [| 5.0; 0.5 |])

let test_first_satisfied () =
  (match Rules.first_satisfied two_rules [| 2.0; 9.0 |] with
  | Some r -> Alcotest.(check (float 1e-12)) "rule 1" 10.0 r.Rules.performance
  | None -> Alcotest.fail "expected a match");
  Alcotest.(check bool) "no match" true
    (Rules.first_satisfied two_rules [| 7.0; 9.0 |] = None)

let test_eval_satisfied () =
  Alcotest.(check (float 1e-12)) "direct hit" 20.0 (Rules.eval two_rules [| 7.0; 3.0 |])

let test_eval_closest_fallback () =
  (* (5.5, 5.4) satisfies nothing; rule 2's box (gap 0.4 on var 1) is
     nearer than rule 1's (gap 0.6 on var 0). *)
  Alcotest.(check (float 1e-12)) "closest rule" 20.0 (Rules.eval two_rules [| 5.5; 5.4 |]);
  (* (7, 9) is 2.1 from rule 1's box but 4.0 from rule 2's: rule 1
     wins despite the var-0 gap. *)
  Alcotest.(check (float 1e-12)) "other side" 10.0 (Rules.eval two_rules [| 7.0; 9.0 |])

let test_eval_empty () =
  let empty = Rules.create ~num_vars:1 ~ranges:[| (0.0, 1.0) |] [] in
  Alcotest.check_raises "empty" (Invalid_argument "Rules.eval: empty rule set")
    (fun () -> ignore (Rules.eval empty [| 0.5 |]))

let test_eval_arity () =
  Alcotest.check_raises "arity" (Invalid_argument "Rules.eval: arity mismatch")
    (fun () -> ignore (Rules.eval two_rules [| 0.5 |]))

let test_rule_distance () =
  let r = rule [ cond 0 0.0 5.0 ] 1.0 in
  Alcotest.(check (float 1e-9)) "satisfied -> 0" 0.0
    (Rules.rule_distance two_rules r [| 3.0; 0.0 |]);
  (* Gap of 2 on a range of width 10 -> normalized distance 0.2. *)
  Alcotest.(check (float 1e-9)) "normalized gap" 0.2
    (Rules.rule_distance two_rules r [| 7.0; 0.0 |])

let test_conflict_free_positive () =
  Alcotest.(check bool) "disjoint" true (Rules.conflict_free two_rules)

let test_conflict_free_negative () =
  let overlapping =
    Rules.create ~num_vars:2 ~ranges:ranges2
      [ rule [ cond 0 0.0 5.0 ] 1.0; rule [ cond 1 0.0 5.0 ] 2.0 ]
  in
  (* (3, 3) satisfies both. *)
  Alcotest.(check bool) "overlap detected" false (Rules.conflict_free overlapping)

let test_unconditional_rule_conflicts () =
  let with_catchall =
    Rules.create ~num_vars:2 ~ranges:ranges2
      [ rule [ cond 0 0.0 5.0 ] 1.0; rule [] 2.0 ]
  in
  Alcotest.(check bool) "catch-all overlaps" false (Rules.conflict_free with_catchall)

(* ------------------------------------------------------------------ *)
(* Textual rule format                                                 *)

let test_of_text_basic () =
  let t =
    Rules.of_text ~num_vars:2 ~ranges:ranges2
      "# demo rules\n42.5 <- v0 = 3 & 2 <= v1 < 8\n17 <- v0 >= 5\n"
  in
  Alcotest.(check int) "two rules" 2 (Array.length (Rules.rules t));
  Alcotest.(check (float 1e-12)) "equality + range" 42.5 (Rules.eval t [| 3.0; 5.0 |]);
  Alcotest.(check (float 1e-12)) "lower bound" 17.0 (Rules.eval t [| 9.0; 9.0 |])

let test_of_text_strict_bounds () =
  let t =
    Rules.of_text ~num_vars:1 ~ranges:[| (0.0, 10.0) |] "1 <- v0 < 5\n2 <- v0 >= 5\n"
  in
  Alcotest.(check (float 1e-12)) "below" 1.0 (Rules.eval t [| 4.9 |]);
  Alcotest.(check (float 1e-12)) "at the strict boundary" 2.0 (Rules.eval t [| 5.0 |]);
  Alcotest.(check bool) "partition is conflict free" true (Rules.conflict_free t)

let test_of_text_unconditional () =
  let t = Rules.of_text ~num_vars:1 ~ranges:[| (0.0, 1.0) |] "7 <-\n" in
  Alcotest.(check (float 1e-12)) "catch-all" 7.0 (Rules.eval t [| 0.3 |])

let test_of_text_errors () =
  let expect s =
    match Rules.of_text ~num_vars:1 ~ranges:[| (0.0, 1.0) |] s with
    | exception Rules.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" s
  in
  expect "";
  expect "abc";
  expect "1 <- v9 = 0";
  expect "1 <- v0 @ 3";
  expect "x <- v0 = 0"

let test_text_roundtrip () =
  let t =
    Rules.of_text ~num_vars:2 ~ranges:ranges2
      "10 <- v0 = 3\n20 <- 2 <= v1 <= 8\n30 <-\n"
  in
  let t' = Rules.of_text ~num_vars:2 ~ranges:ranges2 (Rules.to_text t) in
  Alcotest.(check string) "stable" (Rules.to_text t) (Rules.to_text t')

let suite =
  [
    Alcotest.test_case "create validation" `Quick test_create_validation;
    Alcotest.test_case "satisfies" `Quick test_satisfies;
    Alcotest.test_case "first satisfied" `Quick test_first_satisfied;
    Alcotest.test_case "eval satisfied" `Quick test_eval_satisfied;
    Alcotest.test_case "eval closest fallback" `Quick test_eval_closest_fallback;
    Alcotest.test_case "eval empty" `Quick test_eval_empty;
    Alcotest.test_case "eval arity" `Quick test_eval_arity;
    Alcotest.test_case "rule distance" `Quick test_rule_distance;
    Alcotest.test_case "conflict free positive" `Quick test_conflict_free_positive;
    Alcotest.test_case "conflict free negative" `Quick test_conflict_free_negative;
    Alcotest.test_case "catch-all conflicts" `Quick test_unconditional_rule_conflicts;
    Alcotest.test_case "of_text basic" `Quick test_of_text_basic;
    Alcotest.test_case "of_text strict bounds" `Quick test_of_text_strict_bounds;
    Alcotest.test_case "of_text unconditional" `Quick test_of_text_unconditional;
    Alcotest.test_case "of_text errors" `Quick test_of_text_errors;
    Alcotest.test_case "text roundtrip" `Quick test_text_roundtrip;
  ]
