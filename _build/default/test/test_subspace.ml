open Harmony
open Harmony_objective
module Param = Harmony_param.Param
module Space = Harmony_param.Space

let space =
  Space.create
    [
      Param.int_range ~name:"a" ~lo:0 ~hi:10 ~default:1 ();
      Param.int_range ~name:"b" ~lo:0 ~hi:10 ~default:2 ();
      Param.int_range ~name:"c" ~lo:0 ~hi:10 ~default:3 ();
    ]

let obj =
  Objective.create ~space ~direction:Objective.Higher_is_better (fun c ->
      (100.0 *. c.(0)) +. (10.0 *. c.(1)) +. c.(2))

let test_project_shape () =
  let sub = Subspace.project obj ~indices:[ 2; 0 ] () in
  Alcotest.(check (list int)) "sorted deduped" [ 0; 2 ] (Subspace.indices sub);
  Alcotest.(check int) "reduced dims" 2 (Space.dims (Subspace.objective sub).Objective.space)

let test_project_dedups () =
  let sub = Subspace.project obj ~indices:[ 1; 1; 1 ] () in
  Alcotest.(check (list int)) "one index" [ 1 ] (Subspace.indices sub)

let test_project_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Subspace.project: empty index list")
    (fun () -> ignore (Subspace.project obj ~indices:[] ()));
  Alcotest.check_raises "oob" (Invalid_argument "Subspace.project: index out of range")
    (fun () -> ignore (Subspace.project obj ~indices:[ 3 ] ()))

let test_embed_uses_defaults () =
  let sub = Subspace.project obj ~indices:[ 0; 2 ] () in
  Alcotest.(check (array (float 1e-9)))
    "frozen at defaults" [| 7.0; 2.0; 9.0 |]
    (Subspace.embed sub [| 7.0; 9.0 |])

let test_embed_uses_custom_base () =
  let sub = Subspace.project obj ~indices:[ 0 ] ~base:[| 0.0; 8.0; 9.0 |] () in
  Alcotest.(check (array (float 1e-9)))
    "frozen at base" [| 5.0; 8.0; 9.0 |]
    (Subspace.embed sub [| 5.0 |])

let test_restrict () =
  let sub = Subspace.project obj ~indices:[ 0; 2 ] () in
  Alcotest.(check (array (float 1e-9)))
    "projection" [| 1.0; 3.0 |]
    (Subspace.restrict sub [| 1.0; 2.0; 3.0 |]);
  Alcotest.check_raises "arity" (Invalid_argument "Subspace.restrict: arity mismatch")
    (fun () -> ignore (Subspace.restrict sub [| 1.0 |]))

let test_reduced_eval_consistent () =
  let sub = Subspace.project obj ~indices:[ 1 ] () in
  let reduced = Subspace.objective sub in
  (* b = 4, a and c frozen at defaults (1, 3). *)
  Alcotest.(check (float 1e-9)) "embedded eval" 143.0 (reduced.Objective.eval [| 4.0 |])

let test_tuning_subspace_leaves_rest_fixed () =
  let sub = Subspace.project obj ~indices:[ 0 ] () in
  let outcome = Tuner.tune (Subspace.objective sub) in
  let full = Subspace.embed sub outcome.Tuner.best_config in
  Alcotest.(check (float 1e-9)) "a tuned to max" 10.0 full.(0);
  Alcotest.(check (float 1e-9)) "b untouched" 2.0 full.(1);
  Alcotest.(check (float 1e-9)) "c untouched" 3.0 full.(2)

let test_direction_preserved () =
  let sub = Subspace.project (Objective.negate obj) ~indices:[ 0 ] () in
  Alcotest.(check bool) "lower is better" true
    ((Subspace.objective sub).Objective.direction = Objective.Lower_is_better)

let suite =
  [
    Alcotest.test_case "project shape" `Quick test_project_shape;
    Alcotest.test_case "project dedups" `Quick test_project_dedups;
    Alcotest.test_case "project invalid" `Quick test_project_invalid;
    Alcotest.test_case "embed defaults" `Quick test_embed_uses_defaults;
    Alcotest.test_case "embed custom base" `Quick test_embed_uses_custom_base;
    Alcotest.test_case "restrict" `Quick test_restrict;
    Alcotest.test_case "reduced eval" `Quick test_reduced_eval_consistent;
    Alcotest.test_case "tuning leaves rest fixed" `Quick test_tuning_subspace_leaves_rest_fixed;
    Alcotest.test_case "direction preserved" `Quick test_direction_preserved;
  ]
