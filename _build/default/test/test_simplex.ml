open Harmony
open Harmony_objective
module Param = Harmony_param.Param
module Space = Harmony_param.Space

let space3 =
  Space.create
    (List.init 3 (fun i ->
         Param.int_range ~name:(Printf.sprintf "p%d" i) ~lo:0 ~hi:100 ~default:10 ()))

let test_init_extremes_touch_bounds () =
  let vs = Simplex.Init.vertices Simplex.Init.Extremes space3 in
  Alcotest.(check int) "n+1 vertices" 4 (List.length vs);
  List.iter
    (fun (c, v) ->
      Alcotest.(check bool) "unvalued" true (v = None);
      Array.iter
        (fun x ->
          Alcotest.(check bool) "extreme coordinates" true (x = 0.0 || x = 100.0))
        c)
    vs

let test_init_extremes_distinct () =
  let vs = Simplex.Init.vertices Simplex.Init.Extremes space3 in
  let distinct =
    List.for_all
      (fun (c, _) ->
        List.length (List.filter (fun (c', _) -> Space.config_equal c c') vs) = 1)
      vs
  in
  Alcotest.(check bool) "all distinct" true distinct

let test_init_spread_interior () =
  let vs = Simplex.Init.vertices Simplex.Init.Spread space3 in
  Alcotest.(check int) "n+1 vertices" 4 (List.length vs);
  List.iter
    (fun (c, _) ->
      Array.iter
        (fun x ->
          Alcotest.(check bool) "avoids the boundary" true (x > 0.0 && x < 100.0))
        c)
    vs

let test_init_spread_covers_each_dimension () =
  (* Per dimension, the n+1 vertices land in n+1 different quantiles. *)
  let vs = Simplex.Init.vertices Simplex.Init.Spread space3 in
  for d = 0 to 2 do
    let values =
      List.sort_uniq compare (List.map (fun (c, _) -> c.(d)) vs)
    in
    Alcotest.(check int) "distinct positions" 4 (List.length values)
  done

let test_init_around_default () =
  let vs = Simplex.Init.vertices (Simplex.Init.Around_default 0.1) space3 in
  match vs with
  | (base, _) :: rest ->
      Alcotest.(check (array (float 1e-9))) "base is default" (Space.defaults space3) base;
      Alcotest.(check int) "n shifted vertices" 3 (List.length rest)
  | [] -> Alcotest.fail "empty simplex"

let test_init_seeded_trusted () =
  let seeds = [ ([| 5.0; 5.0; 5.0 |], Some 42.0); ([| 6.0; 6.0; 6.0 |], None) ] in
  let vs = Simplex.Init.vertices (Simplex.Init.Seeded seeds) space3 in
  Alcotest.(check int) "filled to n+1" 4 (List.length vs);
  (match vs with
  | (c, v) :: _ ->
      Alcotest.(check (array (float 1e-9))) "seed kept" [| 5.0; 5.0; 5.0 |] c;
      Alcotest.(check (option (float 1e-9))) "value trusted" (Some 42.0) v
  | [] -> Alcotest.fail "empty");
  (* Fillers are unvalued. *)
  let unvalued = List.filter (fun (_, v) -> v = None) vs in
  Alcotest.(check int) "three unvalued" 3 (List.length unvalued)

let test_init_seeded_dedups () =
  let seeds = [ ([| 5.0; 5.0; 5.0 |], None); ([| 5.0; 5.0; 5.0 |], None) ] in
  let vs = Simplex.Init.vertices (Simplex.Init.Seeded seeds) space3 in
  let fives =
    List.filter (fun (c, _) -> Space.config_equal c [| 5.0; 5.0; 5.0 |]) vs
  in
  Alcotest.(check int) "duplicate removed" 1 (List.length fives)

let test_optimize_quadratic () =
  let obj = Testbed.quadratic_bowl ~dims:3 () in
  let r = Simplex.optimize obj in
  Alcotest.(check bool) "near the minimum" true (r.Simplex.best_performance < 5.0);
  Alcotest.(check bool) "budget respected" true (r.Simplex.evaluations <= 400)

let test_optimize_interior_peak_exact () =
  let obj = Testbed.interior_peak ~dims:3 () in
  let r = Simplex.optimize obj in
  Alcotest.(check bool) "finds the peak" true (r.Simplex.best_performance > 99.0);
  Alcotest.(check bool) "best config valid" true
    (Space.is_valid obj.Objective.space r.Simplex.best_config)

let test_optimize_maximizes_and_minimizes () =
  let peak = Testbed.interior_peak ~dims:2 () in
  let up = Simplex.optimize peak in
  let down = Simplex.optimize (Objective.negate peak) in
  Alcotest.(check (float 1e-6))
    "same optimum either way" up.Simplex.best_performance
    (-.down.Simplex.best_performance)

let test_optimize_respects_budget () =
  let count = ref 0 in
  let obj =
    Objective.create ~space:space3 ~direction:Objective.Lower_is_better (fun c ->
        incr count;
        c.(0))
  in
  let options = { Simplex.default_options with Simplex.max_evaluations = 20 } in
  let r = Simplex.optimize ~options obj in
  Alcotest.(check bool) "hard cap" true (!count <= 20);
  Alcotest.(check int) "reported evaluations" !count r.Simplex.evaluations

let test_optimize_budget_too_small () =
  let obj = Testbed.quadratic_bowl ~dims:3 () in
  Alcotest.check_raises "tiny budget"
    (Invalid_argument "Simplex.optimize: budget below n+2 evaluations") (fun () ->
      ignore
        (Simplex.optimize
           ~options:{ Simplex.default_options with Simplex.max_evaluations = 3 }
           obj))

let test_optimize_trusted_seeds_skip_measurement () =
  let evaluated = ref [] in
  let obj =
    Objective.create ~space:space3 ~direction:Objective.Higher_is_better (fun c ->
        evaluated := Array.copy c :: !evaluated;
        -.abs_float (c.(0) -. 50.0))
  in
  (* All n+1 vertices trusted: the kernel starts transforming without
     measuring the initial simplex, so the very first evaluation is a
     new proposal, not a seed. *)
  let seeds =
    [
      ([| 40.0; 10.0; 10.0 |], Some (-10.0));
      ([| 60.0; 10.0; 10.0 |], Some (-10.0));
      ([| 40.0; 30.0; 10.0 |], Some (-12.0));
      ([| 40.0; 10.0; 30.0 |], Some (-12.0));
    ]
  in
  let options =
    { Simplex.default_options with Simplex.init = Simplex.Init.Seeded seeds;
      max_evaluations = 30 }
  in
  ignore (Simplex.optimize ~options obj);
  match List.rev !evaluated with
  | [] -> Alcotest.fail "no evaluations at all"
  | first :: _ ->
      Alcotest.(check bool) "first evaluation is not a seed" true
        (not (List.exists (fun (s, _) -> Space.config_equal s first) seeds))

let test_optimize_on_plateau_terminates () =
  let obj = Testbed.step_plateau ~dims:2 () in
  let r = Simplex.optimize obj in
  Alcotest.(check bool) "terminates with a plateau value" true
    (r.Simplex.best_performance >= 60.0)

let test_optimize_on_rastrigin_progress () =
  let obj = Testbed.rastrigin ~dims:2 () in
  let r =
    Simplex.optimize
      ~options:{ Simplex.default_options with Simplex.max_evaluations = 600 } obj
  in
  (* Multimodal: we don't require the global optimum, only real progress
     from the default value (~57). *)
  Alcotest.(check bool) "substantial progress" true (r.Simplex.best_performance < 10.0)

let test_objective_failure_propagates () =
  (* Failure injection: a measurement that raises mid-search must
     surface to the caller, not be swallowed. *)
  let count = ref 0 in
  let obj =
    Objective.create ~space:space3 ~direction:Objective.Higher_is_better (fun c ->
        incr count;
        if !count = 7 then failwith "measurement infrastructure died";
        c.(0))
  in
  Alcotest.check_raises "propagates" (Failure "measurement infrastructure died")
    (fun () -> ignore (Simplex.optimize obj));
  Alcotest.(check int) "stopped at the failing evaluation" 7 !count

(* Property: the returned best configuration is always on-grid and its
   reported value matches a re-evaluation (no noise here). *)
let prop_result_consistent =
  QCheck2.Test.make ~name:"simplex result is valid and consistent" ~count:20
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let target = Array.init 3 (fun i -> float_of_int ((seed * (i + 7)) mod 101)) in
      let obj = Testbed.quadratic_bowl ~dims:3 ~target () in
      let r = Simplex.optimize ~options:{ Simplex.default_options with Simplex.max_evaluations = 150 } obj in
      Space.is_valid obj.Objective.space r.Simplex.best_config
      && Float.abs (obj.Objective.eval r.Simplex.best_config -. r.Simplex.best_performance) < 1e-9)

let suite =
  [
    Alcotest.test_case "extremes touch bounds" `Quick test_init_extremes_touch_bounds;
    Alcotest.test_case "extremes distinct" `Quick test_init_extremes_distinct;
    Alcotest.test_case "spread interior" `Quick test_init_spread_interior;
    Alcotest.test_case "spread covers dimensions" `Quick test_init_spread_covers_each_dimension;
    Alcotest.test_case "around default" `Quick test_init_around_default;
    Alcotest.test_case "seeded trusted" `Quick test_init_seeded_trusted;
    Alcotest.test_case "seeded dedups" `Quick test_init_seeded_dedups;
    Alcotest.test_case "optimize quadratic" `Quick test_optimize_quadratic;
    Alcotest.test_case "optimize interior peak" `Quick test_optimize_interior_peak_exact;
    Alcotest.test_case "maximize and minimize" `Quick test_optimize_maximizes_and_minimizes;
    Alcotest.test_case "respects budget" `Quick test_optimize_respects_budget;
    Alcotest.test_case "budget too small" `Quick test_optimize_budget_too_small;
    Alcotest.test_case "trusted seeds skip measurement" `Quick test_optimize_trusted_seeds_skip_measurement;
    Alcotest.test_case "plateau terminates" `Quick test_optimize_on_plateau_terminates;
    Alcotest.test_case "rastrigin progress" `Quick test_optimize_on_rastrigin_progress;
    Alcotest.test_case "objective failure propagates" `Quick test_objective_failure_propagates;
  ]
  @ [ QCheck_alcotest.to_alcotest prop_result_consistent ]
