module Rng = Harmony_numerics.Rng

let check_float = Alcotest.(check (float 1e-9))

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check_float "same stream" (Rng.float a 1.0) (Rng.float b 1.0)
  done

let test_different_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let xs = Array.init 16 (fun _ -> Rng.float a 1.0) in
  let ys = Array.init 16 (fun _ -> Rng.float b 1.0) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_copy_independent () =
  let a = Rng.create 7 in
  let b = Rng.copy a in
  check_float "copies agree" (Rng.float a 1.0) (Rng.float b 1.0);
  (* Advancing one does not affect the other. *)
  ignore (Rng.float a 1.0);
  let third_a = Rng.float a 1.0 in
  ignore (Rng.float b 1.0);
  check_float "still in lockstep" third_a (Rng.float b 1.0)

let test_split_decouples () =
  let parent = Rng.create 3 in
  let child = Rng.split parent in
  (* Child values are reproducible from the same parent seed. *)
  let parent2 = Rng.create 3 in
  let child2 = Rng.split parent2 in
  check_float "split reproducible" (Rng.float child 1.0) (Rng.float child2 1.0)

let test_int_in_bounds () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Rng.int_in rng (-3) 7 in
    Alcotest.(check bool) "in range" true (v >= -3 && v <= 7)
  done

let test_int_in_single () =
  let rng = Rng.create 5 in
  Alcotest.(check int) "degenerate range" 4 (Rng.int_in rng 4 4)

let test_int_in_invalid () =
  let rng = Rng.create 5 in
  Alcotest.check_raises "empty range" (Invalid_argument "Rng.int_in: empty range")
    (fun () -> ignore (Rng.int_in rng 5 4))

let test_uniform_bounds () =
  let rng = Rng.create 11 in
  for _ = 1 to 1000 do
    let v = Rng.uniform rng 2.0 3.0 in
    Alcotest.(check bool) "in [2,3)" true (v >= 2.0 && v < 3.0)
  done

let test_exponential_mean () =
  let rng = Rng.create 13 in
  let n = 20_000 in
  let total = ref 0.0 in
  for _ = 1 to n do
    total := !total +. Rng.exponential rng 5.0
  done;
  let mean = !total /. float_of_int n in
  Alcotest.(check bool) "mean close to 5" true (Float.abs (mean -. 5.0) < 0.2)

let test_gaussian_moments () =
  let rng = Rng.create 17 in
  let n = 20_000 in
  let samples = Array.init n (fun _ -> Rng.gaussian rng 1.0 2.0) in
  let mean = Harmony_numerics.Stats.mean samples in
  let std = Harmony_numerics.Stats.stddev samples in
  Alcotest.(check bool) "mean ~1" true (Float.abs (mean -. 1.0) < 0.1);
  Alcotest.(check bool) "std ~2" true (Float.abs (std -. 2.0) < 0.1)

let test_perturb_range () =
  let rng = Rng.create 19 in
  for _ = 1 to 1000 do
    let v = Rng.perturb rng 0.25 100.0 in
    Alcotest.(check bool) "within +/-25%" true (v >= 75.0 && v < 125.0)
  done

let test_perturb_zero () =
  let rng = Rng.create 19 in
  Alcotest.(check (float 1e-12)) "no perturbation" 100.0 (Rng.perturb rng 0.0 100.0)

let test_choice () =
  let rng = Rng.create 23 in
  let arr = [| "a"; "b"; "c" |] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "member" true (Array.mem (Rng.choice rng arr) arr)
  done

let test_choice_empty () =
  let rng = Rng.create 23 in
  Alcotest.check_raises "empty" (Invalid_argument "Rng.choice: empty array")
    (fun () -> ignore (Rng.choice rng [||]))

let test_shuffle_permutation () =
  let rng = Rng.create 29 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_sample_without_replacement () =
  let rng = Rng.create 31 in
  let s = Rng.sample_without_replacement rng 5 10 in
  Alcotest.(check int) "size" 5 (Array.length s);
  let sorted = Array.copy s in
  Array.sort compare sorted;
  let distinct =
    Array.for_all Fun.id
      (Array.mapi (fun i v -> i = 0 || sorted.(i - 1) <> v) sorted)
  in
  Alcotest.(check bool) "distinct" true distinct;
  Array.iter (fun v -> Alcotest.(check bool) "in range" true (v >= 0 && v < 10)) s

let test_sample_full () =
  let rng = Rng.create 31 in
  let s = Rng.sample_without_replacement rng 10 10 in
  let sorted = Array.copy s in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "all of them" (Array.init 10 Fun.id) sorted

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "different seeds" `Quick test_different_seeds;
    Alcotest.test_case "copy independent" `Quick test_copy_independent;
    Alcotest.test_case "split decouples" `Quick test_split_decouples;
    Alcotest.test_case "int_in bounds" `Quick test_int_in_bounds;
    Alcotest.test_case "int_in single" `Quick test_int_in_single;
    Alcotest.test_case "int_in invalid" `Quick test_int_in_invalid;
    Alcotest.test_case "uniform bounds" `Quick test_uniform_bounds;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
    Alcotest.test_case "perturb range" `Quick test_perturb_range;
    Alcotest.test_case "perturb zero" `Quick test_perturb_zero;
    Alcotest.test_case "choice" `Quick test_choice;
    Alcotest.test_case "choice empty" `Quick test_choice_empty;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
    Alcotest.test_case "sample full" `Quick test_sample_full;
  ]
