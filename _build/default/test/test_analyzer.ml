open Harmony
open Harmony_objective
module Param = Harmony_param.Param
module Space = Harmony_param.Space
module Rng = Harmony_numerics.Rng

let peak_at target =
  let space =
    Space.create
      (List.init 2 (fun i ->
           Param.int_range ~name:(Printf.sprintf "p%d" i) ~lo:0 ~hi:100 ~default:10 ()))
  in
  Objective.create ~space ~direction:Objective.Higher_is_better (fun c ->
      let d2 = ref 0.0 in
      Array.iteri
        (fun i v ->
          let d = (v -. target.(i)) /. 100.0 in
          d2 := !d2 +. (d *. d))
        c;
      100.0 *. exp (-4.0 *. !d2))

let test_characterize_averages () =
  let calls = ref 0 in
  let probe () =
    incr calls;
    [| float_of_int !calls |]
  in
  let c = Analyzer.characterize ~probe ~samples:4 in
  Alcotest.(check (float 1e-9)) "mean of 1..4" 2.5 c.(0);
  Alcotest.(check int) "probe called 4 times" 4 !calls

let test_characterize_invalid () =
  Alcotest.check_raises "samples" (Invalid_argument "Analyzer.characterize: samples < 1")
    (fun () -> ignore (Analyzer.characterize ~probe:(fun () -> [| 1.0 |]) ~samples:0))

let test_classify_empty_db () =
  let analyzer = Analyzer.create (History.create ()) in
  Alcotest.(check bool) "no match" true (Analyzer.classify analyzer [| 1.0 |] = None)

let test_prepare_no_match_falls_back () =
  let analyzer = Analyzer.create (History.create ()) in
  let obj = peak_at [| 60.0; 60.0 |] in
  let prep = Analyzer.prepare analyzer obj ~characteristics:[| 1.0 |] in
  Alcotest.(check bool) "no entry" true (prep.Analyzer.matched = None);
  Alcotest.(check bool) "spread fallback" true (prep.Analyzer.init = Simplex.Init.Spread);
  Alcotest.(check int) "nothing estimated" 0 prep.Analyzer.estimated_vertices

let test_prepare_exact_match_trusts () =
  let obj = peak_at [| 60.0; 60.0 |] in
  let db = History.create () in
  let outcome = Tuner.tune obj in
  let chars = [| 0.8; 0.2 |] in
  ignore (History.add_outcome db ~characteristics:chars outcome);
  let analyzer = Analyzer.create db in
  let prep = Analyzer.prepare analyzer obj ~characteristics:chars in
  Alcotest.(check bool) "matched" true (prep.Analyzer.matched <> None);
  match prep.Analyzer.init with
  | Simplex.Init.Seeded seeds ->
      Alcotest.(check bool) "full simplex" true (List.length seeds >= 3);
      (* Exact match: every seed carries a trusted value. *)
      List.iter
        (fun (_, v) -> Alcotest.(check bool) "trusted" true (v <> None))
        seeds
  | _ -> Alcotest.fail "expected a seeded init"

let test_prepare_similar_match_remeasures () =
  let obj = peak_at [| 60.0; 60.0 |] in
  let db = History.create () in
  let outcome = Tuner.tune obj in
  ignore (History.add_outcome db ~characteristics:[| 0.8; 0.2 |] outcome);
  let analyzer = Analyzer.create db in
  (* Similar but not identical characteristics: configs seed the
     simplex, values are re-measured. *)
  let prep = Analyzer.prepare analyzer obj ~characteristics:[| 0.7; 0.3 |] in
  match prep.Analyzer.init with
  | Simplex.Init.Seeded seeds ->
      List.iter
        (fun (_, v) -> Alcotest.(check bool) "not trusted" true (v = None))
        seeds;
      Alcotest.(check int) "no estimation" 0 prep.Analyzer.estimated_vertices
  | _ -> Alcotest.fail "expected a seeded init"

let test_prepare_estimates_missing_vertices () =
  let obj = peak_at [| 60.0; 60.0 |] in
  let db = History.create () in
  (* Only two distinct configurations in history: the 3-vertex simplex
     needs one estimated vertex. *)
  let chars = [| 0.5 |] in
  let _ =
    History.add db ~characteristics:chars
      ~evaluations:[ ([| 50.0; 50.0 |], 80.0); ([| 60.0; 50.0 |], 90.0) ]
      ()
  in
  let analyzer = Analyzer.create db in
  let prep = Analyzer.prepare analyzer obj ~characteristics:chars in
  Alcotest.(check int) "one vertex estimated" 1 prep.Analyzer.estimated_vertices;
  match prep.Analyzer.init with
  | Simplex.Init.Seeded seeds ->
      Alcotest.(check int) "three vertices" 3 (List.length seeds)
  | _ -> Alcotest.fail "expected a seeded init"

let test_warm_start_faster_than_cold () =
  let obj = peak_at [| 60.0; 60.0 |] in
  let noisy = Objective.with_noise (Rng.create 7) ~level:0.02 obj in
  let options = { Tuner.default_options with Tuner.max_evaluations = 80 } in
  let cold = Tuner.tune ~options noisy in
  let db = History.create () in
  let chars = [| 0.8; 0.2 |] in
  ignore (History.add_outcome db ~characteristics:chars cold);
  let analyzer = Analyzer.create db in
  let warm, prep =
    Analyzer.tune_with_experience ~options analyzer noisy ~characteristics:chars
  in
  Alcotest.(check bool) "experience used" true (prep.Analyzer.matched <> None);
  let reference =
    Objective.worst_of obj [| cold.Tuner.best_performance; warm.Tuner.best_performance |]
  in
  let mc = Tuner.Metrics.of_outcome ~reference obj cold in
  let mw = Tuner.Metrics.of_outcome ~reference obj warm in
  Alcotest.(check bool) "warm start converges no later" true
    (mw.Tuner.Metrics.convergence_iteration <= mc.Tuner.Metrics.convergence_iteration)

let test_tune_with_experience_records () =
  let obj = peak_at [| 40.0; 70.0 |] in
  let db = History.create () in
  let analyzer = Analyzer.create db in
  let _ =
    Analyzer.tune_with_experience
      ~options:{ Tuner.default_options with Tuner.max_evaluations = 40 }
      ~label:"first" analyzer obj ~characteristics:[| 0.1 |]
  in
  Alcotest.(check int) "run recorded" 1 (History.size db);
  Alcotest.(check string) "label kept" "first"
    (List.hd (History.entries db)).History.label

let test_custom_classifier_plugs_in () =
  let db = History.create () in
  let e1 =
    History.add db ~label:"always-me" ~characteristics:[| 0.0 |]
      ~evaluations:[ ([| 1.0; 1.0 |], 1.0) ] ()
  in
  let analyzer = Analyzer.with_classifier (fun _ _ -> Some e1) db in
  match Analyzer.classify analyzer [| 123.0 |] with
  | Some e -> Alcotest.(check string) "custom hit" "always-me" e.History.label
  | None -> Alcotest.fail "custom classifier ignored"

let suite =
  [
    Alcotest.test_case "characterize averages" `Quick test_characterize_averages;
    Alcotest.test_case "characterize invalid" `Quick test_characterize_invalid;
    Alcotest.test_case "classify empty db" `Quick test_classify_empty_db;
    Alcotest.test_case "prepare no match" `Quick test_prepare_no_match_falls_back;
    Alcotest.test_case "prepare exact match trusts" `Quick test_prepare_exact_match_trusts;
    Alcotest.test_case "prepare similar re-measures" `Quick test_prepare_similar_match_remeasures;
    Alcotest.test_case "prepare estimates missing" `Quick test_prepare_estimates_missing_vertices;
    Alcotest.test_case "warm start faster" `Quick test_warm_start_faster_than_cold;
    Alcotest.test_case "tune with experience records" `Quick test_tune_with_experience_records;
    Alcotest.test_case "custom classifier" `Quick test_custom_classifier_plugs_in;
  ]
