open Harmony_ml
module Rng = Harmony_numerics.Rng

(* Two well-separated clusters around (0,0) and (10,10). *)
let two_blobs ?(per_class = 20) seed =
  let rng = Rng.create seed in
  let point cx cy = [| cx +. Rng.uniform rng (-1.0) 1.0; cy +. Rng.uniform rng (-1.0) 1.0 |] in
  let features =
    Array.init (2 * per_class) (fun i ->
        if i < per_class then point 0.0 0.0 else point 10.0 10.0)
  in
  let labels = Array.init (2 * per_class) (fun i -> if i < per_class then 0 else 1) in
  { Classifier.features; labels }

(* ------------------------------------------------------------------ *)
(* Classifier plumbing                                                 *)

let test_validate_training () =
  Alcotest.check_raises "empty" (Invalid_argument "Classifier: empty training set")
    (fun () ->
      ignore (Classifier.validate_training { Classifier.features = [||]; labels = [||] }));
  Alcotest.check_raises "ragged" (Invalid_argument "Classifier: ragged features")
    (fun () ->
      ignore
        (Classifier.validate_training
           { Classifier.features = [| [| 1.0 |]; [| 1.0; 2.0 |] |]; labels = [| 0; 1 |] }));
  Alcotest.check_raises "labels mismatch"
    (Invalid_argument "Classifier: labels length mismatch") (fun () ->
      ignore
        (Classifier.validate_training
           { Classifier.features = [| [| 1.0 |] |]; labels = [| 0; 1 |] }))

let test_num_classes () =
  let t = two_blobs 1 in
  Alcotest.(check int) "two classes" 2 (Classifier.num_classes t)

(* ------------------------------------------------------------------ *)
(* Nearest (the paper's least-squares classification)                  *)

let test_nearest_index () =
  let rows = [| [| 0.0; 0.0 |]; [| 5.0; 5.0 |]; [| 10.0; 0.0 |] |] in
  Alcotest.(check int) "closest row" 1 (Nearest.nearest_index rows [| 4.0; 6.0 |]);
  Alcotest.(check int) "exact" 0 (Nearest.nearest_index rows [| 0.0; 0.0 |])

let test_nearest_index_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Nearest.nearest_index: empty matrix")
    (fun () -> ignore (Nearest.nearest_index [||] [| 1.0 |]))

let test_least_squares_separates () =
  let t = two_blobs 2 in
  let c = Nearest.least_squares t in
  Alcotest.(check int) "near origin" 0 (c.Classifier.classify [| 0.5; -0.5 |]);
  Alcotest.(check int) "near far blob" 1 (c.Classifier.classify [| 9.0; 11.0 |]);
  Alcotest.(check (float 1e-9)) "training accuracy" 1.0 (Classifier.accuracy c t)

let test_knn_majority () =
  let t = two_blobs 3 in
  let c = Nearest.knn ~k:5 t in
  Alcotest.(check (float 1e-9)) "accuracy" 1.0 (Classifier.accuracy c t);
  Alcotest.check_raises "k" (Invalid_argument "Nearest.knn: k < 1") (fun () ->
      ignore (Nearest.knn ~k:0 t))

(* ------------------------------------------------------------------ *)
(* K-means                                                             *)

let test_kmeans_two_blobs () =
  let t = two_blobs 4 in
  let r = Kmeans.fit (Rng.create 1) ~k:2 t.Classifier.features in
  Alcotest.(check int) "two centroids" 2 (Array.length r.Kmeans.centroids);
  (* Every blob member shares its cluster with its blob mates. *)
  let c0 = r.Kmeans.assignment.(0) in
  for i = 0 to 19 do
    Alcotest.(check int) "first blob together" c0 r.Kmeans.assignment.(i)
  done;
  Alcotest.(check bool) "blobs in different clusters" true
    (r.Kmeans.assignment.(39) <> c0);
  Alcotest.(check bool) "inertia small" true (r.Kmeans.inertia < 100.0)

let test_kmeans_k1 () =
  let t = two_blobs 5 in
  let r = Kmeans.fit (Rng.create 2) ~k:1 t.Classifier.features in
  (* Single centroid = grand mean. *)
  Alcotest.(check bool) "centroid near (5,5)" true
    (Float.abs (r.Kmeans.centroids.(0).(0) -. 5.0) < 1.5)

let test_kmeans_invalid () =
  Alcotest.check_raises "k range" (Invalid_argument "Kmeans.fit: k out of range")
    (fun () -> ignore (Kmeans.fit (Rng.create 1) ~k:5 [| [| 1.0 |] |]));
  Alcotest.check_raises "no points" (Invalid_argument "Kmeans.fit: no points")
    (fun () -> ignore (Kmeans.fit (Rng.create 1) ~k:1 [||]))

let test_kmeans_classifier () =
  let t = two_blobs 6 in
  let c = Kmeans.classifier (Rng.create 3) ~k:2 t in
  Alcotest.(check bool) "good accuracy" true (Classifier.accuracy c t >= 0.95)

(* ------------------------------------------------------------------ *)
(* Decision tree                                                       *)

let test_dtree_pure_leaf () =
  let t = { Classifier.features = [| [| 1.0 |]; [| 2.0 |] |]; labels = [| 1; 1 |] } in
  let tree = Dtree.fit t in
  Alcotest.(check int) "single leaf" 1 (Dtree.leaves tree);
  Alcotest.(check int) "classifies the constant" 1 (Dtree.classify tree [| 9.0 |])

let test_dtree_axis_split () =
  let t =
    { Classifier.features = [| [| 1.0 |]; [| 2.0 |]; [| 8.0 |]; [| 9.0 |] |];
      labels = [| 0; 0; 1; 1 |] }
  in
  let tree = Dtree.fit t in
  Alcotest.(check int) "left" 0 (Dtree.classify tree [| 0.0 |]);
  Alcotest.(check int) "right" 1 (Dtree.classify tree [| 10.0 |]);
  Alcotest.(check int) "depth one" 1 (Dtree.depth tree)

let test_dtree_xor () =
  (* XOR needs depth two: no single split separates it. *)
  let t =
    { Classifier.features =
        [| [| 0.0; 0.0 |]; [| 0.0; 1.0 |]; [| 1.0; 0.0 |]; [| 1.0; 1.0 |] |];
      labels = [| 0; 1; 1; 0 |] }
  in
  let c = Dtree.classifier t in
  Alcotest.(check (float 1e-9)) "fits xor" 1.0 (Classifier.accuracy c t)

let test_dtree_max_depth () =
  let t = two_blobs 7 in
  let tree = Dtree.fit ~max_depth:0 t in
  Alcotest.(check int) "stump" 0 (Dtree.depth tree)

let test_dtree_blobs () =
  let t = two_blobs 8 in
  let c = Dtree.classifier t in
  Alcotest.(check (float 1e-9)) "separates blobs" 1.0 (Classifier.accuracy c t)

(* ------------------------------------------------------------------ *)
(* MLP                                                                 *)

let test_mlp_blobs () =
  let t = two_blobs 9 in
  let c = Mlp.classifier (Rng.create 4) ~hidden:8 ~epochs:100 t in
  Alcotest.(check bool) "high accuracy" true (Classifier.accuracy c t >= 0.95)

let test_mlp_probabilities_normalized () =
  let t = two_blobs 10 in
  let m = Mlp.fit (Rng.create 5) ~hidden:4 ~epochs:20 t in
  let p = Mlp.predict_probabilities m [| 5.0; 5.0 |] in
  Alcotest.(check (float 1e-9)) "sums to 1" 1.0 (Array.fold_left ( +. ) 0.0 p);
  Array.iter (fun v -> Alcotest.(check bool) "in [0,1]" true (v >= 0.0 && v <= 1.0)) p

let test_mlp_invalid () =
  let t = two_blobs 11 in
  Alcotest.check_raises "hidden" (Invalid_argument "Mlp.fit: hidden < 1") (fun () ->
      ignore (Mlp.fit (Rng.create 1) ~hidden:0 t))

(* Property: every classifier names a class that exists in training. *)
let prop_classify_in_range =
  QCheck2.Test.make ~name:"classifiers stay in label range" ~count:50
    QCheck2.Gen.(pair (float_range (-20.0) 20.0) (float_range (-20.0) 20.0))
    (fun (x, y) ->
      let t = two_blobs 12 in
      let classifiers =
        [
          Nearest.least_squares t;
          Nearest.knn ~k:3 t;
          Kmeans.classifier (Rng.create 6) ~k:2 t;
          Dtree.classifier t;
        ]
      in
      List.for_all
        (fun c ->
          let l = c.Classifier.classify [| x; y |] in
          l = 0 || l = 1)
        classifiers)

let suite =
  [
    Alcotest.test_case "validate training" `Quick test_validate_training;
    Alcotest.test_case "num classes" `Quick test_num_classes;
    Alcotest.test_case "nearest index" `Quick test_nearest_index;
    Alcotest.test_case "nearest index empty" `Quick test_nearest_index_empty;
    Alcotest.test_case "least squares separates" `Quick test_least_squares_separates;
    Alcotest.test_case "knn majority" `Quick test_knn_majority;
    Alcotest.test_case "kmeans two blobs" `Quick test_kmeans_two_blobs;
    Alcotest.test_case "kmeans k1" `Quick test_kmeans_k1;
    Alcotest.test_case "kmeans invalid" `Quick test_kmeans_invalid;
    Alcotest.test_case "kmeans classifier" `Quick test_kmeans_classifier;
    Alcotest.test_case "dtree pure leaf" `Quick test_dtree_pure_leaf;
    Alcotest.test_case "dtree axis split" `Quick test_dtree_axis_split;
    Alcotest.test_case "dtree xor" `Quick test_dtree_xor;
    Alcotest.test_case "dtree max depth" `Quick test_dtree_max_depth;
    Alcotest.test_case "dtree blobs" `Quick test_dtree_blobs;
    Alcotest.test_case "mlp blobs" `Quick test_mlp_blobs;
    Alcotest.test_case "mlp probabilities" `Quick test_mlp_probabilities_normalized;
    Alcotest.test_case "mlp invalid" `Quick test_mlp_invalid;
  ]
  @ [ QCheck_alcotest.to_alcotest prop_classify_in_range ]
