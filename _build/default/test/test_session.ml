open Harmony
open Harmony_objective
module Param = Harmony_param.Param
module Space = Harmony_param.Space

(* Performance = 50*a + 5*b, c irrelevant: a clean top-n landscape. *)
let space =
  Space.create
    [
      Param.int_range ~name:"a" ~lo:0 ~hi:10 ~default:5 ();
      Param.int_range ~name:"b" ~lo:0 ~hi:10 ~default:5 ();
      Param.int_range ~name:"c" ~lo:0 ~hi:10 ~default:5 ();
    ]

let obj =
  Objective.create ~space ~direction:Objective.Higher_is_better (fun c ->
      (50.0 *. c.(0)) +. (5.0 *. c.(1)))

let test_prioritize_cached () =
  let count = ref 0 in
  let counted = { obj with Objective.eval = (fun c -> incr count; obj.Objective.eval c) } in
  let session = Session.create ~objective:counted () in
  Alcotest.(check bool) "no report yet" true (Session.last_report session = None);
  let r1 = Session.prioritize session in
  let after_first = !count in
  let r2 = Session.prioritize session in
  Alcotest.(check bool) "cached" true (r1 == r2);
  Alcotest.(check int) "no extra evaluations" after_first !count;
  Alcotest.(check bool) "report exposed" true (Session.last_report session = Some r1)

let test_tune_full_space () =
  let session = Session.create ~objective:obj () in
  let r = Session.tune session in
  Alcotest.(check (list int)) "all indices" [ 0; 1; 2 ] r.Session.tuned_indices;
  Alcotest.(check bool) "no experience" false r.Session.used_experience;
  Alcotest.(check bool) "found a good point" true
    (r.Session.outcome.Tuner.best_performance > 500.0)

let test_tune_top_n_projects () =
  let session = Session.create ~objective:obj () in
  let r = Session.tune ~top_n:1 session in
  Alcotest.(check (list int)) "most sensitive only" [ 0 ] r.Session.tuned_indices;
  (* The full-space best config keeps b and c at their defaults. *)
  Alcotest.(check (float 1e-9)) "b frozen" 5.0 r.Session.full_best_config.(1);
  Alcotest.(check (float 1e-9)) "c frozen" 5.0 r.Session.full_best_config.(2);
  Alcotest.(check (float 1e-9)) "a maximized" 10.0 r.Session.full_best_config.(0)

let test_tune_with_characteristics_records () =
  let db = History.create () in
  let session = Session.create ~objective:obj ~db () in
  let r1 = Session.tune ~characteristics:[| 0.9; 0.1 |] ~label:"w1" session in
  Alcotest.(check bool) "first run is cold" false r1.Session.used_experience;
  Alcotest.(check int) "recorded" 1 (History.size db);
  let r2 = Session.tune ~characteristics:[| 0.9; 0.1 |] ~label:"w1-again" session in
  Alcotest.(check bool) "second run reuses experience" true r2.Session.used_experience;
  Alcotest.(check int) "recorded again" 2 (History.size db)

let test_tune_options_override () =
  let count = ref 0 in
  let counted = { obj with Objective.eval = (fun c -> incr count; obj.Objective.eval c) } in
  let session = Session.create ~objective:counted () in
  let _ = Session.tune ~options:{ Tuner.default_options with Tuner.max_evaluations = 12 } session in
  Alcotest.(check bool) "budget honoured" true (!count <= 12)

let test_top_n_and_characteristics_compose () =
  let db = History.create () in
  let session = Session.create ~objective:obj ~db () in
  let _ = Session.tune ~top_n:2 ~characteristics:[| 0.5 |] session in
  let r = Session.tune ~top_n:2 ~characteristics:[| 0.5 |] session in
  Alcotest.(check bool) "experience reused in the subspace" true r.Session.used_experience;
  Alcotest.(check (list int)) "subspace indices" [ 0; 1 ] r.Session.tuned_indices;
  Alcotest.(check (float 1e-9)) "c frozen" 5.0 r.Session.full_best_config.(2)

let test_db_path_persists () =
  let path = Filename.temp_file "harmony_session" ".db" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let s1 = Session.create ~objective:obj ~db_path:path () in
      let _ = Session.tune ~characteristics:[| 0.3 |] s1 in
      Session.save_database s1;
      (* A new session picks up the stored experience. *)
      let s2 = Session.create ~objective:obj ~db_path:path () in
      Alcotest.(check int) "experience survived" 1 (History.size (Session.database s2));
      let r = Session.tune ~characteristics:[| 0.3 |] s2 in
      Alcotest.(check bool) "warm start" true r.Session.used_experience)

let test_db_and_path_conflict () =
  Alcotest.check_raises "both given"
    (Invalid_argument "Session.create: both db and db_path given") (fun () ->
      ignore
        (Session.create ~objective:obj ~db:(History.create ()) ~db_path:"/tmp/x" ()))

let test_save_without_path_is_noop () =
  let s = Session.create ~objective:obj () in
  Session.save_database s

let suite =
  [
    Alcotest.test_case "prioritize cached" `Quick test_prioritize_cached;
    Alcotest.test_case "tune full space" `Quick test_tune_full_space;
    Alcotest.test_case "tune top_n projects" `Quick test_tune_top_n_projects;
    Alcotest.test_case "characteristics recorded" `Quick test_tune_with_characteristics_records;
    Alcotest.test_case "options override" `Quick test_tune_options_override;
    Alcotest.test_case "top_n + characteristics" `Quick test_top_n_and_characteristics_compose;
    Alcotest.test_case "db_path persists" `Quick test_db_path_persists;
    Alcotest.test_case "db and db_path conflict" `Quick test_db_and_path_conflict;
    Alcotest.test_case "save without path" `Quick test_save_without_path_is_noop;
  ]
