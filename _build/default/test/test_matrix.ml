module Matrix = Harmony_numerics.Matrix

let farr = Alcotest.(array (float 1e-9))

let test_make_get_set () =
  let m = Matrix.make 2 3 0.0 in
  Matrix.set m 1 2 5.0;
  Alcotest.(check (float 1e-12)) "set/get" 5.0 (Matrix.get m 1 2);
  Alcotest.(check (float 1e-12)) "untouched" 0.0 (Matrix.get m 0 0)

let test_make_invalid () =
  Alcotest.check_raises "bad dims" (Invalid_argument "Matrix.make: non-positive size")
    (fun () -> ignore (Matrix.make 0 3 0.0))

let test_bounds () =
  let m = Matrix.make 2 2 0.0 in
  Alcotest.check_raises "oob get" (Invalid_argument "Matrix.get: out of bounds")
    (fun () -> ignore (Matrix.get m 2 0));
  Alcotest.check_raises "oob set" (Invalid_argument "Matrix.set: out of bounds")
    (fun () -> Matrix.set m 0 (-1) 1.0)

let test_of_rows_to_rows () =
  let rows = [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let m = Matrix.of_rows rows in
  Alcotest.(check (array farr)) "round trip" rows (Matrix.to_rows m);
  (* of_rows copies. *)
  rows.(0).(0) <- 99.0;
  Alcotest.(check (float 1e-12)) "copied" 1.0 (Matrix.get m 0 0)

let test_of_rows_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Matrix.of_rows: ragged rows")
    (fun () -> ignore (Matrix.of_rows [| [| 1.0 |]; [| 1.0; 2.0 |] |]))

let test_identity () =
  let i3 = Matrix.identity 3 in
  Alcotest.(check (float 1e-12)) "diag" 1.0 (Matrix.get i3 1 1);
  Alcotest.(check (float 1e-12)) "off-diag" 0.0 (Matrix.get i3 0 2)

let test_transpose () =
  let m = Matrix.of_rows [| [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |] |] in
  let t = Matrix.transpose m in
  Alcotest.(check int) "rows" 3 (Matrix.rows t);
  Alcotest.(check int) "cols" 2 (Matrix.cols t);
  Alcotest.(check (float 1e-12)) "entry" 6.0 (Matrix.get t 2 1)

let test_row_col () =
  let m = Matrix.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  Alcotest.check farr "row" [| 3.0; 4.0 |] (Matrix.row m 1);
  Alcotest.check farr "col" [| 2.0; 4.0 |] (Matrix.col m 1)

let test_add_sub_scale () =
  let a = Matrix.of_rows [| [| 1.0; 2.0 |] |] in
  let b = Matrix.of_rows [| [| 3.0; 5.0 |] |] in
  Alcotest.check farr "add" [| 4.0; 7.0 |] (Matrix.row (Matrix.add a b) 0);
  Alcotest.check farr "sub" [| 2.0; 3.0 |] (Matrix.row (Matrix.sub b a) 0);
  Alcotest.check farr "scale" [| 2.0; 4.0 |] (Matrix.row (Matrix.scale 2.0 a) 0)

let test_add_mismatch () =
  let a = Matrix.make 1 2 0.0 and b = Matrix.make 2 1 0.0 in
  Alcotest.check_raises "mismatch" (Invalid_argument "Matrix.add: dimension mismatch")
    (fun () -> ignore (Matrix.add a b))

let test_mul () =
  let a = Matrix.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Matrix.of_rows [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let c = Matrix.mul a b in
  Alcotest.check farr "row0" [| 19.0; 22.0 |] (Matrix.row c 0);
  Alcotest.check farr "row1" [| 43.0; 50.0 |] (Matrix.row c 1)

let test_mul_identity () =
  let a = Matrix.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  Alcotest.(check bool) "a*I = a" true (Matrix.equal a (Matrix.mul a (Matrix.identity 2)))

let test_mul_vec () =
  let a = Matrix.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  Alcotest.check farr "a*x" [| 5.0; 11.0 |] (Matrix.mul_vec a [| 1.0; 2.0 |])

let test_solve_simple () =
  let a = Matrix.of_rows [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let x = Matrix.solve a [| 5.0; 10.0 |] in
  Alcotest.check farr "solution" [| 1.0; 3.0 |] x

let test_solve_needs_pivot () =
  (* Leading zero forces a row swap. *)
  let a = Matrix.of_rows [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let x = Matrix.solve a [| 2.0; 3.0 |] in
  Alcotest.check farr "pivoted" [| 3.0; 2.0 |] x

let test_solve_singular () =
  let a = Matrix.of_rows [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  Alcotest.check_raises "singular" (Failure "Matrix.solve: singular matrix")
    (fun () -> ignore (Matrix.solve a [| 1.0; 2.0 |]))

let test_solve_residual () =
  let a =
    Matrix.of_rows
      [| [| 4.0; -2.0; 1.0 |]; [| -2.0; 4.0; -2.0 |]; [| 1.0; -2.0; 4.0 |] |]
  in
  let b = [| 11.0; -16.0; 17.0 |] in
  let x = Matrix.solve a b in
  let ax = Matrix.mul_vec a x in
  Alcotest.check farr "Ax = b" b ax

let test_equal_eps () =
  let a = Matrix.of_rows [| [| 1.0 |] |] in
  let b = Matrix.of_rows [| [| 1.0 +. 1e-12 |] |] in
  Alcotest.(check bool) "within eps" true (Matrix.equal a b);
  Alcotest.(check bool) "outside eps" false (Matrix.equal ~eps:1e-15 a b)

(* Property: solve then multiply recovers the RHS for random
   well-conditioned (diagonally dominant) systems. *)
let prop_solve_roundtrip =
  let gen =
    QCheck2.Gen.(
      let* n = int_range 1 6 in
      let* entries = array_size (return (n * n)) (float_range (-1.0) 1.0) in
      let* rhs = array_size (return n) (float_range (-10.0) 10.0) in
      return (n, entries, rhs))
  in
  QCheck2.Test.make ~name:"solve roundtrip (diag dominant)" ~count:100 gen
    (fun (n, entries, rhs) ->
      let a =
        Matrix.init n n (fun i j ->
            let v = entries.((i * n) + j) in
            if i = j then v +. float_of_int n +. 1.0 else v)
      in
      let x = Matrix.solve a rhs in
      let ax = Matrix.mul_vec a x in
      Array.for_all2 (fun u v -> Float.abs (u -. v) < 1e-6) ax rhs)

let suite =
  [
    Alcotest.test_case "make get set" `Quick test_make_get_set;
    Alcotest.test_case "make invalid" `Quick test_make_invalid;
    Alcotest.test_case "bounds" `Quick test_bounds;
    Alcotest.test_case "of_rows to_rows" `Quick test_of_rows_to_rows;
    Alcotest.test_case "of_rows ragged" `Quick test_of_rows_ragged;
    Alcotest.test_case "identity" `Quick test_identity;
    Alcotest.test_case "transpose" `Quick test_transpose;
    Alcotest.test_case "row col" `Quick test_row_col;
    Alcotest.test_case "add sub scale" `Quick test_add_sub_scale;
    Alcotest.test_case "add mismatch" `Quick test_add_mismatch;
    Alcotest.test_case "mul" `Quick test_mul;
    Alcotest.test_case "mul identity" `Quick test_mul_identity;
    Alcotest.test_case "mul_vec" `Quick test_mul_vec;
    Alcotest.test_case "solve simple" `Quick test_solve_simple;
    Alcotest.test_case "solve needs pivot" `Quick test_solve_needs_pivot;
    Alcotest.test_case "solve singular" `Quick test_solve_singular;
    Alcotest.test_case "solve residual" `Quick test_solve_residual;
    Alcotest.test_case "equal eps" `Quick test_equal_eps;
  ]
  @ [ QCheck_alcotest.to_alcotest prop_solve_roundtrip ]
