open Harmony_objective
module Space = Harmony_param.Space

let test_quadratic_minimum () =
  let obj = Testbed.quadratic_bowl ~dims:2 () in
  Alcotest.(check (float 1e-9)) "zero at target" 0.0 (obj.Objective.eval [| 50.0; 50.0 |]);
  Alcotest.(check bool) "positive elsewhere" true (obj.Objective.eval [| 0.0; 0.0 |] > 0.0)

let test_quadratic_custom_target () =
  let obj = Testbed.quadratic_bowl ~dims:2 ~target:[| 10.0; 20.0 |] () in
  Alcotest.(check (float 1e-9)) "zero at custom" 0.0 (obj.Objective.eval [| 10.0; 20.0 |])

let test_quadratic_bad_target () =
  Alcotest.check_raises "arity" (Invalid_argument "Testbed.quadratic_bowl: target arity")
    (fun () -> ignore (Testbed.quadratic_bowl ~dims:2 ~target:[| 1.0 |] ()))

let test_rosenbrock_minimum () =
  let obj = Testbed.rosenbrock ~dims:2 () in
  Alcotest.(check (float 1e-9)) "zero at (1,1)" 0.0 (obj.Objective.eval [| 1.0; 1.0 |]);
  Alcotest.(check bool) "grid contains optimum" true
    (Space.is_valid obj.Objective.space (Space.snap obj.Objective.space [| 1.0; 1.0 |]))

let test_rastrigin_minimum () =
  let obj = Testbed.rastrigin ~dims:3 () in
  Alcotest.(check (float 1e-9)) "zero at origin" 0.0 (obj.Objective.eval [| 0.0; 0.0; 0.0 |]);
  Alcotest.(check bool) "multimodal" true (obj.Objective.eval [| 0.08; 0.0; 0.0 |] > 0.0)

let test_interior_peak () =
  let obj = Testbed.interior_peak ~dims:2 () in
  Alcotest.(check (float 1e-9)) "peak value" 100.0 (obj.Objective.eval [| 60.0; 60.0 |]);
  Alcotest.(check bool) "boundary lower" true
    (obj.Objective.eval [| 0.0; 0.0 |] < 60.0);
  Alcotest.(check bool) "higher is better" true
    (obj.Objective.direction = Objective.Higher_is_better)

let test_step_plateau_levels () =
  let obj = Testbed.step_plateau ~dims:1 () in
  Alcotest.(check (float 1e-9)) "same plateau" (obj.Objective.eval [| 41.0 |])
    (obj.Objective.eval [| 59.0 |]);
  Alcotest.(check bool) "middle beats edge" true
    (obj.Objective.eval [| 50.0 |] > obj.Objective.eval [| 5.0 |])

let test_with_irrelevant () =
  let obj = Testbed.quadratic_bowl ~dims:3 () in
  let masked = Testbed.with_irrelevant obj [ 1 ] in
  (* Coordinate 1 no longer matters... *)
  Alcotest.(check (float 1e-9))
    "irrelevant ignored"
    (masked.Objective.eval [| 50.0; 0.0; 50.0 |])
    (masked.Objective.eval [| 50.0; 99.0; 50.0 |]);
  (* ...but the others still do. *)
  Alcotest.(check bool) "others matter" true
    (masked.Objective.eval [| 0.0; 0.0; 50.0 |]
    <> masked.Objective.eval [| 50.0; 0.0; 50.0 |])

let test_with_irrelevant_bad_index () =
  let obj = Testbed.quadratic_bowl ~dims:2 () in
  Alcotest.check_raises "oob"
    (Invalid_argument "Testbed.with_irrelevant: index out of range") (fun () ->
      ignore (Testbed.with_irrelevant obj [ 5 ]))

let suite =
  [
    Alcotest.test_case "quadratic minimum" `Quick test_quadratic_minimum;
    Alcotest.test_case "quadratic custom target" `Quick test_quadratic_custom_target;
    Alcotest.test_case "quadratic bad target" `Quick test_quadratic_bad_target;
    Alcotest.test_case "rosenbrock minimum" `Quick test_rosenbrock_minimum;
    Alcotest.test_case "rastrigin minimum" `Quick test_rastrigin_minimum;
    Alcotest.test_case "interior peak" `Quick test_interior_peak;
    Alcotest.test_case "step plateau" `Quick test_step_plateau_levels;
    Alcotest.test_case "with irrelevant" `Quick test_with_irrelevant;
    Alcotest.test_case "with irrelevant bad index" `Quick test_with_irrelevant_bad_index;
  ]
