open Harmony
open Harmony_objective
module Param = Harmony_param.Param
module Space = Harmony_param.Space

let space3 =
  Space.create
    [
      Param.int_range ~name:"a" ~lo:0 ~hi:10 ~default:0 ();
      Param.int_range ~name:"b" ~lo:0 ~hi:10 ~default:0 ();
      Param.int_range ~name:"c" ~lo:0 ~hi:10 ~default:0 ();
    ]

(* Additive response: main effects over the full range are exactly
   20, 4, 0 (coefficients times the span). *)
let additive =
  Objective.create ~space:space3 ~direction:Objective.Higher_is_better (fun v ->
      (2.0 *. v.(0)) +. (0.4 *. v.(1)))

let feq = Alcotest.(check (float 1e-9))

let test_full_main_effects () =
  let e = Factorial.full additive in
  Alcotest.(check int) "2^3 runs" 8 e.Factorial.runs;
  feq "a effect" 20.0 e.Factorial.main.(0);
  feq "b effect" 4.0 e.Factorial.main.(1);
  feq "c effect" 0.0 e.Factorial.main.(2)

let test_full_no_interactions_when_additive () =
  let e = Factorial.full additive in
  Array.iter
    (fun (_, _, v) -> feq "zero interaction" 0.0 v)
    e.Factorial.interactions;
  feq "ratio" 0.0 (Factorial.interaction_ratio e)

let test_full_detects_interaction () =
  (* Product term: the a*b interaction effect over the full span is
     0.5 * 10 * 10 / 2 = 25 in effect units... verified against the
     classical definition below. *)
  let multiplicative =
    Objective.create ~space:space3 ~direction:Objective.Higher_is_better (fun v ->
        0.5 *. v.(0) *. v.(1))
  in
  let e = Factorial.full multiplicative in
  let ab =
    Array.to_list e.Factorial.interactions
    |> List.find_map (fun (i, j, v) -> if i = 0 && j = 1 then Some v else None)
  in
  (match ab with
  | Some v -> feq "ab interaction" 25.0 v
  | None -> Alcotest.fail "missing ab interaction");
  Alcotest.(check bool) "ratio flags interactions" true
    (Factorial.interaction_ratio e > 0.5)

let test_full_levels () =
  (* At interior levels 0.2/0.8 of [0,10] the span is 6, so a's effect
     is 12. *)
  let e = Factorial.full ~levels:(0.2, 0.8) additive in
  feq "a effect over reduced span" 12.0 e.Factorial.main.(0)

let test_full_guards () =
  Alcotest.check_raises "levels order"
    (Invalid_argument "Factorial: levels must satisfy 0 <= lo < hi <= 1") (fun () ->
      ignore (Factorial.full ~levels:(0.8, 0.2) additive));
  Alcotest.check_raises "too many runs"
    (Invalid_argument "Factorial.full: too many parameters for a full design")
    (fun () -> ignore (Factorial.full ~max_runs:4 additive))

let test_ranked_main () =
  let e = Factorial.full additive in
  match Factorial.ranked_main e with
  | (first, _) :: (second, _) :: (third, _) :: _ ->
      Alcotest.(check string) "a first" "a" first;
      Alcotest.(check string) "b second" "b" second;
      Alcotest.(check string) "c third" "c" third
  | _ -> Alcotest.fail "expected three entries"

let test_pb_runs () =
  let e = Factorial.plackett_burman additive in
  Alcotest.(check int) "8-run design for 3 params" 8 e.Factorial.runs;
  Alcotest.(check int) "no interactions" 0 (Array.length e.Factorial.interactions)

let test_pb_recovers_additive_effects () =
  let e = Factorial.plackett_burman additive in
  feq "a effect" 20.0 e.Factorial.main.(0);
  feq "b effect" 4.0 e.Factorial.main.(1);
  feq "c effect" 0.0 e.Factorial.main.(2)

let test_pb_scales_to_more_parameters () =
  let wide =
    Space.create
      (List.init 14 (fun i ->
           Param.int_range ~name:(Printf.sprintf "p%d" i) ~lo:0 ~hi:1 ~default:0 ()))
  in
  let obj =
    Objective.create ~space:wide ~direction:Objective.Higher_is_better (fun v ->
        Array.fold_left ( +. ) 0.0 v)
  in
  let e = Factorial.plackett_burman obj in
  (* 14 params need the 16-run design: far fewer than 2^14. *)
  Alcotest.(check int) "16 runs" 16 e.Factorial.runs;
  Array.iter (fun m -> feq "unit effects" 1.0 m) e.Factorial.main

let test_pb_too_many () =
  let wide =
    Space.create
      (List.init 24 (fun i ->
           Param.int_range ~name:(Printf.sprintf "p%d" i) ~lo:0 ~hi:1 ~default:0 ()))
  in
  let obj =
    Objective.create ~space:wide ~direction:Objective.Higher_is_better (fun _ -> 0.0)
  in
  Alcotest.check_raises "23 max"
    (Invalid_argument "Factorial.plackett_burman: more than 23 parameters")
    (fun () -> ignore (Factorial.plackett_burman obj))

(* Property: PB design columns are balanced (equal highs and lows),
   which is what makes the effect estimates unbiased. *)
let test_pb_balanced_columns () =
  List.iter
    (fun n ->
      let space =
        Space.create
          (List.init n (fun i ->
               Param.int_range ~name:(Printf.sprintf "p%d" i) ~lo:0 ~hi:1 ~default:0 ()))
      in
      let highs = Array.make n 0 in
      let runs = ref 0 in
      let obj =
        Objective.create ~space ~direction:Objective.Higher_is_better (fun v ->
            incr runs;
            Array.iteri (fun i x -> if x > 0.5 then highs.(i) <- highs.(i) + 1) v;
            0.0)
      in
      let _ = Factorial.plackett_burman obj in
      Array.iter
        (fun h ->
          Alcotest.(check int) (Printf.sprintf "n=%d balanced" n) (!runs / 2) h)
        highs)
    [ 3; 7; 11; 15; 19; 23 ]

let suite =
  [
    Alcotest.test_case "full main effects" `Quick test_full_main_effects;
    Alcotest.test_case "full additive no interactions" `Quick test_full_no_interactions_when_additive;
    Alcotest.test_case "full detects interaction" `Quick test_full_detects_interaction;
    Alcotest.test_case "full levels" `Quick test_full_levels;
    Alcotest.test_case "full guards" `Quick test_full_guards;
    Alcotest.test_case "ranked main" `Quick test_ranked_main;
    Alcotest.test_case "pb runs" `Quick test_pb_runs;
    Alcotest.test_case "pb recovers effects" `Quick test_pb_recovers_additive_effects;
    Alcotest.test_case "pb scales" `Quick test_pb_scales_to_more_parameters;
    Alcotest.test_case "pb too many" `Quick test_pb_too_many;
    Alcotest.test_case "pb balanced columns" `Quick test_pb_balanced_columns;
  ]
