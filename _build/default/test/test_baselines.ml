open Harmony
open Harmony_objective
module Param = Harmony_param.Param
module Space = Harmony_param.Space
module Rng = Harmony_numerics.Rng

let peak = Testbed.interior_peak ~dims:2 ()

let small_space =
  Space.create
    [
      Param.int_range ~name:"a" ~lo:0 ~hi:4 ~default:0 ();
      Param.int_range ~name:"b" ~lo:0 ~hi:4 ~default:0 ();
    ]

let small_obj =
  Objective.create ~space:small_space ~direction:Objective.Higher_is_better
    (fun c -> (10.0 *. c.(0)) +. c.(1))

let test_random_search_finds_something () =
  let r = Baselines.random_search (Rng.create 1) ~max_evaluations:200 peak in
  Alcotest.(check int) "budget spent" 200 r.Baselines.evaluations;
  Alcotest.(check bool) "reasonable result" true (r.Baselines.best_performance > 50.0);
  Alcotest.(check (float 1e-9))
    "consistent" r.Baselines.best_performance
    (peak.Objective.eval r.Baselines.best_config)

let test_random_search_deterministic () =
  let a = Baselines.random_search (Rng.create 5) ~max_evaluations:50 peak in
  let b = Baselines.random_search (Rng.create 5) ~max_evaluations:50 peak in
  Alcotest.(check (float 1e-12)) "same seed same result" a.Baselines.best_performance
    b.Baselines.best_performance

let test_random_search_empty_budget () =
  Alcotest.check_raises "no budget"
    (Invalid_argument "Baselines.random_search: empty budget") (fun () ->
      ignore (Baselines.random_search (Rng.create 1) ~max_evaluations:0 peak))

let test_exhaustive_finds_optimum () =
  let r = Baselines.exhaustive small_obj in
  Alcotest.(check int) "5*5 evaluations" 25 r.Baselines.evaluations;
  Alcotest.(check (float 1e-12)) "true optimum" 44.0 r.Baselines.best_performance;
  Alcotest.(check (array (float 1e-12))) "config" [| 4.0; 4.0 |] r.Baselines.best_config

let test_exhaustive_limit () =
  let obj = Testbed.interior_peak ~dims:4 () in
  match Baselines.exhaustive ~limit:100 obj with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected cardinality guard to fire"

let test_sweep_matches_enumeration () =
  let perfs = Baselines.sweep small_obj in
  Alcotest.(check int) "all configs" 25 (Array.length perfs);
  Alcotest.(check (float 1e-12)) "max matches exhaustive" 44.0
    (Array.fold_left Float.max neg_infinity perfs)

let test_random_sweep () =
  let perfs = Baselines.random_sweep (Rng.create 2) ~samples:500 peak in
  Alcotest.(check int) "sample count" 500 (Array.length perfs);
  Array.iter
    (fun p -> Alcotest.(check bool) "plausible" true (p >= 0.0 && p <= 100.0))
    perfs

let test_powell_linear () =
  (* A separable linear objective is exactly Powell's home turf. *)
  let r = Baselines.powell ~max_evaluations:100 small_obj in
  Alcotest.(check (float 1e-12)) "optimum" 44.0 r.Baselines.best_performance

let test_powell_on_peak () =
  let r = Baselines.powell ~max_evaluations:200 peak in
  Alcotest.(check bool) "near the peak" true (r.Baselines.best_performance > 99.0)

let test_powell_respects_budget () =
  let count = ref 0 in
  let counted = { peak with Objective.eval = (fun c -> incr count; peak.Objective.eval c) } in
  ignore (Baselines.powell ~max_evaluations:37 counted);
  Alcotest.(check bool) "hard cap" true (!count <= 37)

let test_powell_invalid () =
  Alcotest.check_raises "line points" (Invalid_argument "Baselines.powell: line_points < 3")
    (fun () -> ignore (Baselines.powell ~line_points:2 peak))

let test_annealing_improves () =
  let r = Baselines.simulated_annealing (Rng.create 3) ~max_evaluations:300 peak in
  Alcotest.(check bool) "near the peak" true (r.Baselines.best_performance > 90.0);
  Alcotest.(check int) "budget spent" 300 r.Baselines.evaluations

let test_annealing_minimizes () =
  let bowl = Testbed.quadratic_bowl ~dims:2 () in
  let start = Objective.eval_default bowl in
  let r = Baselines.simulated_annealing (Rng.create 4) ~max_evaluations:400 bowl in
  Alcotest.(check bool) "descends" true (r.Baselines.best_performance < start /. 4.0)

let test_annealing_deterministic () =
  let a = Baselines.simulated_annealing (Rng.create 5) ~max_evaluations:100 peak in
  let b = Baselines.simulated_annealing (Rng.create 5) ~max_evaluations:100 peak in
  Alcotest.(check (float 1e-12)) "same seed" a.Baselines.best_performance
    b.Baselines.best_performance

let test_annealing_empty_budget () =
  Alcotest.check_raises "no budget"
    (Invalid_argument "Baselines.simulated_annealing: empty budget") (fun () ->
      ignore (Baselines.simulated_annealing (Rng.create 1) ~max_evaluations:0 peak))

let test_powell_valley () =
  (* Rosenbrock's curved valley is where Powell's direction update
     earns its keep; expect real progress from the default start. *)
  let ros = Testbed.rosenbrock () in
  let start = Objective.eval_default ros in
  let r = Baselines.powell ~max_evaluations:400 ros in
  Alcotest.(check bool) "descended the valley" true
    (r.Baselines.best_performance < start /. 10.0)

let suite =
  [
    Alcotest.test_case "random search" `Quick test_random_search_finds_something;
    Alcotest.test_case "random search deterministic" `Quick test_random_search_deterministic;
    Alcotest.test_case "random search empty budget" `Quick test_random_search_empty_budget;
    Alcotest.test_case "exhaustive optimum" `Quick test_exhaustive_finds_optimum;
    Alcotest.test_case "exhaustive limit" `Quick test_exhaustive_limit;
    Alcotest.test_case "sweep" `Quick test_sweep_matches_enumeration;
    Alcotest.test_case "random sweep" `Quick test_random_sweep;
    Alcotest.test_case "powell linear" `Quick test_powell_linear;
    Alcotest.test_case "powell peak" `Quick test_powell_on_peak;
    Alcotest.test_case "powell budget" `Quick test_powell_respects_budget;
    Alcotest.test_case "powell invalid" `Quick test_powell_invalid;
    Alcotest.test_case "powell valley" `Quick test_powell_valley;
    Alcotest.test_case "annealing improves" `Quick test_annealing_improves;
    Alcotest.test_case "annealing minimizes" `Quick test_annealing_minimizes;
    Alcotest.test_case "annealing deterministic" `Quick test_annealing_deterministic;
    Alcotest.test_case "annealing empty budget" `Quick test_annealing_empty_budget;
  ]
