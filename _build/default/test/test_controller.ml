open Harmony
open Harmony_objective
module Param = Harmony_param.Param
module Space = Harmony_param.Space

let space =
  Space.create
    (List.init 2 (fun i ->
         Param.int_range ~name:(Printf.sprintf "p%d" i) ~lo:0 ~hi:100 ~default:10 ()))

let peak c =
  let d2 = ref 0.0 in
  Array.iteri
    (fun i v ->
      let d = (v -. if i = 0 then 60.0 else 40.0) /. 100.0 in
      d2 := !d2 +. (d *. d))
    c;
  100.0 *. exp (-4.0 *. !d2)

let drive ?(budget = 200) () =
  let options = { Simplex.default_options with Simplex.max_evaluations = budget } in
  let c = Controller.create ~options ~space ~direction:Objective.Higher_is_better () in
  let rec loop () =
    match Controller.pending c with
    | `Measure config ->
        Controller.report c (peak config);
        loop ()
    | `Done outcome -> (c, outcome)
  in
  loop ()

let test_online_equals_batch () =
  (* The controller is the same kernel inverted: identical search. *)
  let options = { Simplex.default_options with Simplex.max_evaluations = 200 } in
  let obj = Objective.create ~space ~direction:Objective.Higher_is_better peak in
  let batch = Simplex.optimize ~options obj in
  let _, online = drive () in
  Alcotest.(check (float 1e-9))
    "same best performance" batch.Simplex.best_performance
    online.Simplex.best_performance;
  Alcotest.(check (array (float 1e-9)))
    "same best configuration" batch.Simplex.best_config online.Simplex.best_config;
  Alcotest.(check int) "same evaluation count" batch.Simplex.evaluations
    online.Simplex.evaluations

let test_measurement_count () =
  let c, outcome = drive () in
  Alcotest.(check int) "reports = kernel evaluations" outcome.Simplex.evaluations
    (Controller.measurements c)

let test_pending_idempotent () =
  let c = Controller.create ~space ~direction:Objective.Higher_is_better () in
  match (Controller.pending c, Controller.pending c) with
  | `Measure a, `Measure b ->
      Alcotest.(check (array (float 1e-9))) "same config until reported" a b
  | _ -> Alcotest.fail "expected a measurement request"

let test_pending_configs_valid () =
  let c = Controller.create ~space ~direction:Objective.Higher_is_better () in
  let steps = ref 0 in
  let rec loop () =
    match Controller.pending c with
    | `Measure config when !steps < 50 ->
        incr steps;
        Alcotest.(check bool) "on grid" true (Space.is_valid space config);
        Controller.report c (peak config);
        loop ()
    | `Measure _ | `Done _ -> ()
  in
  loop ()

let test_best_so_far_tracks () =
  let c = Controller.create ~space ~direction:Objective.Higher_is_better () in
  Alcotest.(check bool) "empty at start" true (Controller.best_so_far c = None);
  (match Controller.pending c with
  | `Measure _ -> Controller.report c 10.0
  | `Done _ -> Alcotest.fail "finished too early");
  (match Controller.pending c with
  | `Measure _ -> Controller.report c 5.0
  | `Done _ -> Alcotest.fail "finished too early");
  match Controller.best_so_far c with
  | Some (_, perf) -> Alcotest.(check (float 1e-12)) "keeps the higher" 10.0 perf
  | None -> Alcotest.fail "expected a best"

let test_best_so_far_lower_is_better () =
  let c = Controller.create ~space ~direction:Objective.Lower_is_better () in
  (match Controller.pending c with
  | `Measure _ -> Controller.report c 10.0
  | `Done _ -> Alcotest.fail "finished too early");
  (match Controller.pending c with
  | `Measure _ -> Controller.report c 5.0
  | `Done _ -> Alcotest.fail "finished too early");
  match Controller.best_so_far c with
  | Some (_, perf) -> Alcotest.(check (float 1e-12)) "keeps the lower" 5.0 perf
  | None -> Alcotest.fail "expected a best"

let test_report_after_done_rejected () =
  let c, _ = drive ~budget:20 () in
  Alcotest.check_raises "finished"
    (Invalid_argument "Controller.report: search already finished") (fun () ->
      Controller.report c 1.0)

let test_trusted_seed_init () =
  (* A fully-trusted initial simplex: the first request is already a
     transformation proposal. *)
  let seeds =
    [
      ([| 10.0; 10.0 |], Some 50.0);
      ([| 30.0; 10.0 |], Some 60.0);
      ([| 10.0; 30.0 |], Some 55.0);
    ]
  in
  let options =
    { Simplex.default_options with Simplex.init = Simplex.Init.Seeded seeds;
      max_evaluations = 30 }
  in
  let c = Controller.create ~options ~space ~direction:Objective.Higher_is_better () in
  match Controller.pending c with
  | `Measure config ->
      Alcotest.(check bool) "not one of the seeds" true
        (not (List.exists (fun (s, _) -> Space.config_equal s config) seeds))
  | `Done _ -> Alcotest.fail "should want a measurement"

let test_two_controllers_are_independent () =
  (* Two interleaved sessions must not share state (the effect-handler
     continuations are per instance). *)
  let a = Controller.create ~space ~direction:Objective.Higher_is_better () in
  let b = Controller.create ~space ~direction:Objective.Lower_is_better () in
  for step = 1 to 40 do
    (match Controller.pending a with
    | `Measure config -> Controller.report a (peak config)
    | `Done _ -> ());
    if step mod 2 = 0 then
      match Controller.pending b with
      | `Measure config -> Controller.report b (peak config)
      | `Done _ -> ()
  done;
  (* a maximizes, b minimizes the same function: their incumbents
     diverge. *)
  match (Controller.best_so_far a, Controller.best_so_far b) with
  | Some (_, pa), Some (_, pb) ->
      Alcotest.(check bool) "divergent incumbents" true (pa > pb)
  | _ -> Alcotest.fail "both controllers should have measurements"

let suite =
  [
    Alcotest.test_case "online equals batch" `Quick test_online_equals_batch;
    Alcotest.test_case "measurement count" `Quick test_measurement_count;
    Alcotest.test_case "pending idempotent" `Quick test_pending_idempotent;
    Alcotest.test_case "pending configs valid" `Quick test_pending_configs_valid;
    Alcotest.test_case "best so far" `Quick test_best_so_far_tracks;
    Alcotest.test_case "best so far (minimize)" `Quick test_best_so_far_lower_is_better;
    Alcotest.test_case "report after done" `Quick test_report_after_done_rejected;
    Alcotest.test_case "trusted seed init" `Quick test_trusted_seed_init;
    Alcotest.test_case "two controllers independent" `Quick test_two_controllers_are_independent;
  ]
