module Param = Harmony_param.Param
module Space = Harmony_param.Space
module Rng = Harmony_numerics.Rng

let space =
  Space.create
    [
      Param.int_range ~name:"a" ~lo:0 ~hi:4 ~default:2 ();
      Param.int_range ~name:"b" ~lo:10 ~hi:30 ~step:10 ~default:10 ();
    ]

let farr = Alcotest.(array (float 1e-9))

let test_create_duplicate () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Space.create: duplicate parameter a") (fun () ->
      ignore
        (Space.create
           [
             Param.int_range ~name:"a" ~lo:0 ~hi:1 ~default:0 ();
             Param.int_range ~name:"a" ~lo:0 ~hi:1 ~default:0 ();
           ]))

let test_create_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Space.create: empty parameter list")
    (fun () -> ignore (Space.create []))

let test_dims_and_lookup () =
  Alcotest.(check int) "dims" 2 (Space.dims space);
  Alcotest.(check int) "index b" 1 (Space.index_of_name space "b");
  Alcotest.check_raises "missing" Not_found (fun () ->
      ignore (Space.index_of_name space "zz"))

let test_defaults_mins_maxs () =
  Alcotest.check farr "defaults" [| 2.0; 10.0 |] (Space.defaults space);
  Alcotest.check farr "mins" [| 0.0; 10.0 |] (Space.mins space);
  Alcotest.check farr "maxs" [| 4.0; 30.0 |] (Space.maxs space)

let test_snap () =
  Alcotest.check farr "snapped" [| 3.0; 20.0 |] (Space.snap space [| 3.2; 24.0 |])

let test_is_valid () =
  Alcotest.(check bool) "valid" true (Space.is_valid space [| 1.0; 30.0 |]);
  Alcotest.(check bool) "off grid" false (Space.is_valid space [| 1.0; 25.0 |]);
  Alcotest.(check bool) "wrong arity" false (Space.is_valid space [| 1.0 |])

let test_normalize_roundtrip () =
  let c = [| 3.0; 20.0 |] in
  Alcotest.check farr "roundtrip" c (Space.denormalize space (Space.normalize space c))

let test_cardinality () =
  Alcotest.(check (float 1e-9)) "5*3" 15.0 (Space.cardinality space)

let test_cardinality_huge () =
  (* The paper's motivating 2^1000 example must not overflow. *)
  let big =
    Space.create
      (List.init 1000 (fun i ->
           Param.int_range ~name:(Printf.sprintf "p%d" i) ~lo:0 ~hi:1 ~default:0 ()))
  in
  let c = Space.cardinality big in
  Alcotest.(check bool) "finite and huge" true (c > 1e300 && Float.is_finite c)

let test_random_valid () =
  let rng = Rng.create 1 in
  for _ = 1 to 200 do
    Alcotest.(check bool) "valid" true (Space.is_valid space (Space.random rng space))
  done

let test_neighbors_interior () =
  let n = Space.neighbors space [| 2.0; 20.0 |] in
  Alcotest.(check int) "four neighbours" 4 (List.length n);
  List.iter
    (fun c -> Alcotest.(check bool) "valid" true (Space.is_valid space c))
    n

let test_neighbors_corner () =
  let n = Space.neighbors space [| 0.0; 10.0 |] in
  Alcotest.(check int) "two neighbours" 2 (List.length n)

let test_enumerate_count () =
  let count = Seq.fold_left (fun acc _ -> acc + 1) 0 (Space.enumerate space) in
  Alcotest.(check int) "full enumeration" 15 count

let test_enumerate_distinct_and_valid () =
  let seen = Hashtbl.create 16 in
  Seq.iter
    (fun c ->
      Alcotest.(check bool) "valid" true (Space.is_valid space c);
      let key = Space.config_to_string space c in
      Alcotest.(check bool) "distinct" false (Hashtbl.mem seen key);
      Hashtbl.add seen key ())
    (Space.enumerate space)

let test_distance () =
  Alcotest.(check (float 1e-9))
    "normalized euclidean" (sqrt 2.0)
    (Space.distance space [| 0.0; 10.0 |] [| 4.0; 30.0 |])

let test_config_equal () =
  Alcotest.(check bool) "equal" true (Space.config_equal [| 1.0 |] [| 1.0 +. 1e-12 |]);
  Alcotest.(check bool) "not equal" false (Space.config_equal [| 1.0 |] [| 1.1 |]);
  Alcotest.(check bool) "arity" false (Space.config_equal [| 1.0 |] [| 1.0; 2.0 |])

let test_config_to_string () =
  Alcotest.(check string)
    "rendering" "{a=2; b=10}"
    (Space.config_to_string space [| 2.0; 10.0 |])

(* Property: snap is a projection onto the valid grid. *)
let prop_snap_projection =
  QCheck2.Test.make ~name:"snap projects onto the grid" ~count:300
    QCheck2.Gen.(pair (float_range (-10.0) 10.0) (float_range 0.0 40.0))
    (fun (a, b) ->
      let s = Space.snap space [| a; b |] in
      Space.is_valid space s && Space.config_equal s (Space.snap space s))

let suite =
  [
    Alcotest.test_case "create duplicate" `Quick test_create_duplicate;
    Alcotest.test_case "create empty" `Quick test_create_empty;
    Alcotest.test_case "dims and lookup" `Quick test_dims_and_lookup;
    Alcotest.test_case "defaults mins maxs" `Quick test_defaults_mins_maxs;
    Alcotest.test_case "snap" `Quick test_snap;
    Alcotest.test_case "is_valid" `Quick test_is_valid;
    Alcotest.test_case "normalize roundtrip" `Quick test_normalize_roundtrip;
    Alcotest.test_case "cardinality" `Quick test_cardinality;
    Alcotest.test_case "cardinality huge" `Quick test_cardinality_huge;
    Alcotest.test_case "random valid" `Quick test_random_valid;
    Alcotest.test_case "neighbors interior" `Quick test_neighbors_interior;
    Alcotest.test_case "neighbors corner" `Quick test_neighbors_corner;
    Alcotest.test_case "enumerate count" `Quick test_enumerate_count;
    Alcotest.test_case "enumerate distinct valid" `Quick test_enumerate_distinct_and_valid;
    Alcotest.test_case "distance" `Quick test_distance;
    Alcotest.test_case "config equal" `Quick test_config_equal;
    Alcotest.test_case "config to string" `Quick test_config_to_string;
  ]
  @ [ QCheck_alcotest.to_alcotest prop_snap_projection ]
