open Harmony_cachesim

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)

let small () = Cache.create ~size_bytes:256 ~line_bytes:64 ~associativity:2
(* 4 lines, 2 sets of 2 ways. *)

let test_create_invalid () =
  Alcotest.check_raises "line not power of two"
    (Invalid_argument "Cache.create: line size must be a power of two") (fun () ->
      ignore (Cache.create ~size_bytes:256 ~line_bytes:48 ~associativity:1));
  Alcotest.check_raises "assoc" (Invalid_argument "Cache.create: associativity < 1")
    (fun () -> ignore (Cache.create ~size_bytes:256 ~line_bytes:64 ~associativity:0))

let test_cold_miss_then_hit () =
  let c = small () in
  Alcotest.(check bool) "cold miss" false (Cache.access c 0);
  Alcotest.(check bool) "hit" true (Cache.access c 0);
  Alcotest.(check bool) "same line hit" true (Cache.access c 63);
  Alcotest.(check bool) "next line misses" false (Cache.access c 64);
  Alcotest.(check int) "accesses" 4 (Cache.accesses c);
  Alcotest.(check int) "hits" 2 (Cache.hits c);
  Alcotest.(check int) "misses" 2 (Cache.misses c)

let test_associativity_holds_two_ways () =
  let c = small () in
  (* Addresses 0 and 128 map to set 0 (2 sets, 64-byte lines); both
     fit in the 2 ways. *)
  ignore (Cache.access c 0);
  ignore (Cache.access c 128);
  Alcotest.(check bool) "way 1 retained" true (Cache.access c 0);
  Alcotest.(check bool) "way 2 retained" true (Cache.access c 128)

let test_lru_eviction () =
  let c = small () in
  (* Three conflicting lines in a 2-way set: the least recently used
     one (line 0, after line 128 was re-touched) is evicted. *)
  ignore (Cache.access c 0);
  ignore (Cache.access c 128);
  ignore (Cache.access c 128);
  ignore (Cache.access c 256);
  (* line 0 evicted *)
  Alcotest.(check bool) "recently used stays" true (Cache.access c 128);
  Alcotest.(check bool) "newcomer stays" true (Cache.access c 256);
  Alcotest.(check bool) "LRU victim gone" false (Cache.access c 0)

let test_direct_mapped_conflicts () =
  let dm = Cache.create ~size_bytes:128 ~line_bytes:64 ~associativity:1 in
  (* Two lines, direct-mapped: 0 and 128 collide in set 0. *)
  ignore (Cache.access dm 0);
  ignore (Cache.access dm 128);
  Alcotest.(check bool) "conflict evicts" false (Cache.access dm 0);
  (* The same pattern in a 2-way cache of the same size has no
     conflict. *)
  let sa = Cache.create ~size_bytes:128 ~line_bytes:64 ~associativity:2 in
  ignore (Cache.access sa 0);
  ignore (Cache.access sa 128);
  Alcotest.(check bool) "associativity absorbs" true (Cache.access sa 0)

let test_hit_rate_and_reset () =
  let c = small () in
  Alcotest.(check (float 1e-12)) "empty" 0.0 (Cache.hit_rate c);
  ignore (Cache.access c 0);
  ignore (Cache.access c 0);
  Alcotest.(check (float 1e-12)) "half" 0.5 (Cache.hit_rate c);
  Cache.reset c;
  Alcotest.(check int) "reset counters" 0 (Cache.accesses c);
  Alcotest.(check bool) "reset contents" false (Cache.access c 0)

(* Property: hits + misses = accesses, and a working set that fits in
   one set's ways never misses after the cold pass. *)
let prop_counters_consistent =
  QCheck2.Test.make ~name:"cache counters consistent" ~count:100
    QCheck2.Gen.(list_size (int_range 1 200) (int_range 0 4096))
    (fun addresses ->
      let c = Cache.create ~size_bytes:512 ~line_bytes:64 ~associativity:2 in
      List.iter (fun a -> ignore (Cache.access c a)) addresses;
      Cache.hits c + Cache.misses c = Cache.accesses c
      && Cache.accesses c = List.length addresses)

(* ------------------------------------------------------------------ *)
(* Matmul                                                              *)

let test_run_access_count () =
  (* The i-k-j blocked nest touches A once per (i,p) in each j-block,
     and B and C once per inner iteration: with full-size blocks,
     m*k + 2*m*n*k element accesses. *)
  let r = Matmul.run ~m:8 ~n:8 ~k:8 ~mb:8 ~nb:8 ~kb:8 () in
  Alcotest.(check int) "flops" (2 * 8 * 8 * 8) r.Matmul.flops;
  Alcotest.(check bool) "cycles at least one per access" true
    (r.Matmul.cycles >= float_of_int ((8 * 8) + (2 * 8 * 8 * 8)))

let test_tiny_matrices_cache_resident () =
  (* An 8x8 triple fits entirely in L1: hit rate near 1 after cold
     misses. *)
  let r = Matmul.run ~m:8 ~n:8 ~k:8 ~mb:8 ~nb:8 ~kb:8 () in
  Alcotest.(check bool) "nearly all hits" true (r.Matmul.l1_hit_rate > 0.95)

let test_blocking_beats_unblocked () =
  (* 64x64 doubles = 32 KB per matrix: far beyond the 8 KB L1.
     Sensible blocks should beat full-size (unblocked) loops. *)
  let unblocked = Matmul.run ~m:64 ~n:64 ~k:64 ~mb:64 ~nb:64 ~kb:64 () in
  let blocked = Matmul.run ~m:64 ~n:64 ~k:64 ~mb:16 ~nb:16 ~kb:16 () in
  Alcotest.(check bool) "blocking reduces cycles" true
    (blocked.Matmul.cycles < unblocked.Matmul.cycles);
  Alcotest.(check bool) "blocking improves L1 hit rate" true
    (blocked.Matmul.l1_hit_rate > unblocked.Matmul.l1_hit_rate)

let test_run_clamps_blocks () =
  let a = Matmul.run ~m:8 ~n:8 ~k:8 ~mb:999 ~nb:999 ~kb:999 () in
  let b = Matmul.run ~m:8 ~n:8 ~k:8 ~mb:8 ~nb:8 ~kb:8 () in
  Alcotest.(check (float 1e-9)) "clamped to dims" b.Matmul.cycles a.Matmul.cycles

let test_run_invalid () =
  Alcotest.check_raises "dims" (Invalid_argument "Matmul.run: non-positive dims")
    (fun () -> ignore (Matmul.run ~m:0 ~n:1 ~k:1 ~mb:1 ~nb:1 ~kb:1 ()))

let test_run_deterministic () =
  let a = Matmul.run ~m:24 ~n:24 ~k:24 ~mb:8 ~nb:12 ~kb:4 () in
  let b = Matmul.run ~m:24 ~n:24 ~k:24 ~mb:8 ~nb:12 ~kb:4 () in
  Alcotest.(check (float 1e-9)) "same cycles" a.Matmul.cycles b.Matmul.cycles

let test_objective_tunes () =
  (* End to end: Active Harmony finds block sizes at least as good as
     the unblocked baseline, typically much better. *)
  let obj = Matmul.objective ~m:48 ~n:48 ~k:48 () in
  let unblocked = (Matmul.run ~m:48 ~n:48 ~k:48 ~mb:48 ~nb:48 ~kb:48 ()).Matmul.cycles in
  let outcome =
    Harmony.Tuner.tune
      ~options:{ Harmony.Tuner.default_options with Harmony.Tuner.max_evaluations = 60 }
      obj
  in
  Alcotest.(check bool) "tuned beats unblocked" true
    (outcome.Harmony.Tuner.best_performance < unblocked)

let suite =
  [
    Alcotest.test_case "create invalid" `Quick test_create_invalid;
    Alcotest.test_case "cold miss then hit" `Quick test_cold_miss_then_hit;
    Alcotest.test_case "associativity" `Quick test_associativity_holds_two_ways;
    Alcotest.test_case "lru eviction" `Quick test_lru_eviction;
    Alcotest.test_case "direct mapped conflicts" `Quick test_direct_mapped_conflicts;
    Alcotest.test_case "hit rate and reset" `Quick test_hit_rate_and_reset;
    Alcotest.test_case "matmul access count" `Quick test_run_access_count;
    Alcotest.test_case "matmul cache resident" `Quick test_tiny_matrices_cache_resident;
    Alcotest.test_case "blocking beats unblocked" `Slow test_blocking_beats_unblocked;
    Alcotest.test_case "matmul clamps blocks" `Quick test_run_clamps_blocks;
    Alcotest.test_case "matmul invalid" `Quick test_run_invalid;
    Alcotest.test_case "matmul deterministic" `Quick test_run_deterministic;
    Alcotest.test_case "objective tunes" `Slow test_objective_tunes;
  ]
  @ [ QCheck_alcotest.to_alcotest prop_counters_consistent ]
