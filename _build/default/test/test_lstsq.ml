module Matrix = Harmony_numerics.Matrix
module Lstsq = Harmony_numerics.Lstsq

let farr = Alcotest.(array (float 1e-6))

let test_square_exact () =
  let a = Matrix.of_rows [| [| 2.0; 0.0 |]; [| 0.0; 4.0 |] |] in
  Alcotest.check farr "exact" [| 3.0; 0.5 |] (Lstsq.solve a [| 6.0; 2.0 |])

let test_overdetermined_consistent () =
  (* Three points on the line y = 2x + 1. *)
  let a = Matrix.of_rows [| [| 0.0; 1.0 |]; [| 1.0; 1.0 |]; [| 2.0; 1.0 |] |] in
  Alcotest.check farr "line fit" [| 2.0; 1.0 |] (Lstsq.solve a [| 1.0; 3.0; 5.0 |])

let test_overdetermined_least_squares () =
  (* Mean minimizes squared error for the all-ones design. *)
  let a = Matrix.of_rows [| [| 1.0 |]; [| 1.0 |]; [| 1.0 |]; [| 1.0 |] |] in
  Alcotest.check farr "mean" [| 2.5 |] (Lstsq.solve a [| 1.0; 2.0; 3.0; 4.0 |])

let test_underdetermined_min_norm () =
  (* x1 + x2 = 2: the minimum-norm solution is (1, 1). *)
  let a = Matrix.of_rows [| [| 1.0; 1.0 |] |] in
  Alcotest.check farr "min norm" [| 1.0; 1.0 |] (Lstsq.solve a [| 2.0 |])

let test_qr_matches_solve () =
  let a = Matrix.of_rows [| [| 3.0; 1.0 |]; [| 1.0; 2.0 |]; [| 0.0; 1.0 |] |] in
  let b = [| 9.0; 8.0; 3.0 |] in
  let x1 = Lstsq.qr_solve a b and x2 = Lstsq.solve a b in
  Alcotest.check farr "agree" x1 x2

let test_qr_requires_tall () =
  let a = Matrix.of_rows [| [| 1.0; 2.0 |] |] in
  Alcotest.check_raises "wide input"
    (Invalid_argument "Lstsq.qr_solve: fewer rows than columns") (fun () ->
      ignore (Lstsq.qr_solve a [| 1.0 |]))

let test_residual_norm () =
  let a = Matrix.of_rows [| [| 1.0 |]; [| 1.0 |] |] in
  let x = [| 1.5 |] in
  Alcotest.(check (float 1e-9))
    "residual" (sqrt 0.5)
    (Lstsq.residual_norm a x [| 1.0; 2.0 |])

let test_fit_hyperplane_exact () =
  (* z = 2x - y + 3 through four points. *)
  let points = [| [| 0.0; 0.0 |]; [| 1.0; 0.0 |]; [| 0.0; 1.0 |]; [| 1.0; 1.0 |] |] in
  let values = [| 3.0; 5.0; 2.0; 4.0 |] in
  let coeffs = Lstsq.fit_hyperplane points values in
  Alcotest.check farr "coefficients" [| 2.0; -1.0; 3.0 |] coeffs;
  Alcotest.(check (float 1e-9))
    "prediction" 4.5
    (Lstsq.predict_hyperplane coeffs [| 1.0; 0.5 |])

let test_fit_hyperplane_extrapolates () =
  let points = [| [| 0.0 |]; [| 1.0 |] |] in
  let coeffs = Lstsq.fit_hyperplane points [| 0.0; 10.0 |] in
  Alcotest.(check (float 1e-9))
    "extrapolation" 20.0
    (Lstsq.predict_hyperplane coeffs [| 2.0 |])

let test_fit_hyperplane_empty () =
  Alcotest.check_raises "no points" (Invalid_argument "Lstsq.fit_hyperplane: no points")
    (fun () -> ignore (Lstsq.fit_hyperplane [||] [||]))

let test_predict_arity () =
  Alcotest.check_raises "bad arity"
    (Invalid_argument "Lstsq.predict_hyperplane: coefficient size mismatch")
    (fun () -> ignore (Lstsq.predict_hyperplane [| 1.0; 2.0 |] [| 1.0; 2.0 |]))

(* Property: least squares residual never exceeds the residual of the
   zero vector (optimality sanity check). *)
let prop_lstsq_beats_zero =
  let gen =
    QCheck2.Gen.(
      let* m = int_range 1 6 in
      let* n = int_range 1 6 in
      let* entries = array_size (return (m * n)) (float_range (-5.0) 5.0) in
      let* rhs = array_size (return m) (float_range (-5.0) 5.0) in
      return (m, n, entries, rhs))
  in
  QCheck2.Test.make ~name:"least squares beats the zero vector" ~count:100 gen
    (fun (m, n, entries, rhs) ->
      let a = Matrix.init m n (fun i j -> entries.((i * n) + j)) in
      let x = Lstsq.solve a rhs in
      let zero_res = Lstsq.residual_norm a (Array.make n 0.0) rhs in
      Lstsq.residual_norm a x rhs <= zero_res +. 1e-6)

(* Property: a hyperplane fit through exactly dims+1 affinely
   independent points interpolates them. *)
let prop_hyperplane_interpolates =
  let gen =
    QCheck2.Gen.(
      let* w = float_range (-3.0) 3.0 in
      let* c = float_range (-3.0) 3.0 in
      let* xs = array_size (return 5) (float_range (-10.0) 10.0) in
      return (w, c, xs))
  in
  QCheck2.Test.make ~name:"hyperplane reproduces a linear function" ~count:100 gen
    (fun (w, c, xs) ->
      let points = Array.map (fun x -> [| x |]) xs in
      let values = Array.map (fun x -> (w *. x) +. c) xs in
      let coeffs = Lstsq.fit_hyperplane points values in
      Array.for_all2
        (fun p v -> Float.abs (Lstsq.predict_hyperplane coeffs p -. v) < 1e-5)
        points values)

let suite =
  [
    Alcotest.test_case "square exact" `Quick test_square_exact;
    Alcotest.test_case "overdetermined consistent" `Quick test_overdetermined_consistent;
    Alcotest.test_case "overdetermined least squares" `Quick test_overdetermined_least_squares;
    Alcotest.test_case "underdetermined min norm" `Quick test_underdetermined_min_norm;
    Alcotest.test_case "qr matches solve" `Quick test_qr_matches_solve;
    Alcotest.test_case "qr requires tall" `Quick test_qr_requires_tall;
    Alcotest.test_case "residual norm" `Quick test_residual_norm;
    Alcotest.test_case "fit hyperplane exact" `Quick test_fit_hyperplane_exact;
    Alcotest.test_case "fit hyperplane extrapolates" `Quick test_fit_hyperplane_extrapolates;
    Alcotest.test_case "fit hyperplane empty" `Quick test_fit_hyperplane_empty;
    Alcotest.test_case "predict arity" `Quick test_predict_arity;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_lstsq_beats_zero; prop_hyperplane_interpolates ]
