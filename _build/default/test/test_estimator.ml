open Harmony
module Param = Harmony_param.Param
module Space = Harmony_param.Space

let space =
  Space.create
    [
      Param.int_range ~name:"x" ~lo:0 ~hi:10 ~default:0 ();
      Param.int_range ~name:"y" ~lo:0 ~hi:10 ~default:0 ();
    ]

(* Performance plane: P = 3x + 2y + 1 (linear in raw coordinates, so
   also linear in normalized ones). *)
let plane c = (3.0 *. c.(0)) +. (2.0 *. c.(1)) +. 1.0

let points_on_plane =
  List.map
    (fun (x, y) ->
      let c = [| float_of_int x; float_of_int y |] in
      (c, plane c))
    [ (0, 0); (10, 0); (0, 10); (10, 10); (5, 5) ]

let test_interpolates_plane () =
  let target = [| 4.0; 6.0 |] in
  let est = Estimator.estimate ~space ~points:points_on_plane ~target () in
  Alcotest.(check (float 1e-6)) "exact on a plane" (plane target) est

let test_extrapolates_plane () =
  (* Triangulation "with interpolation or extrapolation" (Section 4.3):
     the target lies outside the convex hull of the three points. *)
  let points =
    List.map (fun (x, y) -> ([| x; y |], plane [| x; y |]))
      [ (0.0, 0.0); (2.0, 0.0); (0.0, 2.0) ]
  in
  let target = [| 8.0; 8.0 |] in
  let est = Estimator.estimate ~space ~points ~target () in
  Alcotest.(check (float 1e-6)) "extrapolated" (plane target) est

let test_single_point_fallback () =
  let est =
    Estimator.estimate ~space ~points:[ ([| 2.0; 2.0 |], 7.0) ] ~target:[| 9.0; 9.0 |] ()
  in
  Alcotest.(check (float 1e-9)) "constant" 7.0 est

let test_empty_points () =
  Alcotest.check_raises "no data"
    (Invalid_argument "Estimator.estimate: no historical points") (fun () ->
      ignore (Estimator.estimate ~space ~points:[] ~target:[| 0.0; 0.0 |] ()))

let test_nearest_choice_uses_local_data () =
  (* Two regions with different local planes; Nearest must use the
     target's own region. *)
  let local c = 100.0 +. c.(0) in
  let far c = -.c.(0) in
  let points =
    List.map (fun x -> ([| x; 0.0 |], local [| x; 0.0 |])) [ 0.0; 1.0; 2.0 ]
    @ List.map (fun x -> ([| x; 10.0 |], far [| x; 10.0 |])) [ 8.0; 9.0; 10.0 ]
  in
  let est =
    Estimator.estimate ~k:3 ~choice:Estimator.Nearest ~space ~points
      ~target:[| 1.0; 0.0 |] ()
  in
  Alcotest.(check (float 1e-6)) "local plane used" 101.0 est

let test_latest_choice_uses_recent_data () =
  (* An old performance regime followed by a new one (both sets span
     the plane): Latest must reflect the new regime. *)
  let old_points =
    List.map (fun c -> (c, 10.0)) [ [| 2.0; 2.0 |]; [| 8.0; 2.0 |]; [| 2.0; 8.0 |] ]
  in
  let new_points =
    List.map (fun c -> (c, 50.0)) [ [| 0.0; 0.0 |]; [| 10.0; 0.0 |]; [| 0.0; 10.0 |] ]
  in
  let points = old_points @ new_points in
  let est_latest =
    Estimator.estimate ~k:3 ~choice:Estimator.Latest ~space ~points
      ~target:[| 5.0; 0.0 |] ()
  in
  Alcotest.(check (float 1e-6)) "recent regime" 50.0 est_latest

let test_k_larger_than_points () =
  let est =
    Estimator.estimate ~k:50 ~space ~points:points_on_plane ~target:[| 3.0; 3.0 |] ()
  in
  Alcotest.(check (float 1e-6)) "clamped k still works" (plane [| 3.0; 3.0 |]) est

let test_overdetermined_least_squares () =
  (* More points than dims+1 and slightly inconsistent values: the
     least-squares plane smooths them. *)
  let noisy =
    List.map
      (fun (c, p) -> (c, p +. if c.(0) = 5.0 then 0.5 else 0.0))
      points_on_plane
  in
  let est = Estimator.estimate ~k:5 ~space ~points:noisy ~target:[| 5.0; 5.0 |] () in
  Alcotest.(check bool) "close to the plane" true
    (Float.abs (est -. plane [| 5.0; 5.0 |]) < 1.0)

let test_fill_batch () =
  let targets = [ [| 1.0; 1.0 |]; [| 9.0; 2.0 |] ] in
  let filled = Estimator.fill ~space ~points:points_on_plane ~targets () in
  Alcotest.(check int) "both estimated" 2 (List.length filled);
  List.iter
    (fun (c, p) -> Alcotest.(check (float 1e-6)) "plane value" (plane c) p)
    filled

let suite =
  [
    Alcotest.test_case "interpolates plane" `Quick test_interpolates_plane;
    Alcotest.test_case "extrapolates plane" `Quick test_extrapolates_plane;
    Alcotest.test_case "single point" `Quick test_single_point_fallback;
    Alcotest.test_case "empty points" `Quick test_empty_points;
    Alcotest.test_case "nearest uses local data" `Quick test_nearest_choice_uses_local_data;
    Alcotest.test_case "latest uses recent data" `Quick test_latest_choice_uses_recent_data;
    Alcotest.test_case "k larger than points" `Quick test_k_larger_than_points;
    Alcotest.test_case "overdetermined least squares" `Quick test_overdetermined_least_squares;
    Alcotest.test_case "fill batch" `Quick test_fill_batch;
  ]
