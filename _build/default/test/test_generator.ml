module Generator = Harmony_datagen.Generator
module Rules = Harmony_datagen.Rules
module Param = Harmony_param.Param
module Space = Harmony_param.Space
module Rng = Harmony_numerics.Rng
open Harmony_objective

let small_space =
  Space.create
    [
      Param.int_range ~name:"x" ~lo:1 ~hi:10 ~default:5 ();
      Param.int_range ~name:"y" ~lo:1 ~hi:10 ~default:5 ();
      Param.int_range ~name:"z" ~lo:1 ~hi:10 ~default:5 ();
    ]

let g =
  Generator.generate ~space:small_space ~workload_dims:2 ~irrelevant:[ 2 ]
    ~cells_per_param:4 ~cells_per_workload:2 ~seed:5 ()

let w0 = [| 0.3; 0.7 |]

let test_deterministic () =
  let g2 =
    Generator.generate ~space:small_space ~workload_dims:2 ~irrelevant:[ 2 ]
      ~cells_per_param:4 ~cells_per_workload:2 ~seed:5 ()
  in
  Alcotest.(check (float 1e-12))
    "same seed same data"
    (Generator.eval g [| 3.0; 7.0; 2.0 |] ~workload:w0)
    (Generator.eval g2 [| 3.0; 7.0; 2.0 |] ~workload:w0)

let test_seed_changes_data () =
  let g2 =
    Generator.generate ~space:small_space ~workload_dims:2 ~irrelevant:[ 2 ]
      ~cells_per_param:4 ~cells_per_workload:2 ~seed:6 ()
  in
  let differs = ref false in
  Seq.iter
    (fun c ->
      if Generator.eval g c ~workload:w0 <> Generator.eval g2 c ~workload:w0 then
        differs := true)
    (Space.enumerate small_space);
  Alcotest.(check bool) "different seed differs somewhere" true !differs

let test_irrelevant_truly_irrelevant () =
  (* Changing z never changes the output — rule data has no condition
     on it (Section 5.2's ground truth). *)
  Seq.iter
    (fun c ->
      let base = Generator.eval g c ~workload:w0 in
      for z = 1 to 10 do
        let c' = Array.copy c in
        c'.(2) <- float_of_int z;
        Alcotest.(check (float 1e-12)) "z irrelevant" base
          (Generator.eval g c' ~workload:w0)
      done)
    (Space.enumerate small_space)

let test_relevant_params_matter () =
  let differs i =
    Seq.exists
      (fun c ->
        let c' = Array.copy c in
        c'.(i) <- (if c.(i) < 5.0 then 10.0 else 1.0);
        Generator.eval g c ~workload:w0 <> Generator.eval g c' ~workload:w0)
      (Space.enumerate small_space)
  in
  Alcotest.(check bool) "x matters" true (differs 0);
  Alcotest.(check bool) "y matters" true (differs 1)

let test_workload_matters () =
  let w1 = [| 0.9; 0.1 |] in
  let differs =
    Seq.exists
      (fun c -> Generator.eval g c ~workload:w0 <> Generator.eval g c ~workload:w1)
      (Space.enumerate small_space)
  in
  Alcotest.(check bool) "workload shifts performance" true differs

let test_perf_range () =
  Seq.iter
    (fun c ->
      let v = Generator.eval g c ~workload:w0 in
      Alcotest.(check bool) "within [0, 55]" true (v >= 0.0 && v <= 55.0))
    (Space.enumerate small_space)

let test_quantization_piecewise_constant () =
  (* Two configs in the same cell (4 cells over 1..10) evaluate
     identically even though the smooth response differs. *)
  let a = [| 1.0; 5.0; 5.0 |] and b = [| 2.0; 5.0; 5.0 |] in
  Alcotest.(check (float 1e-12))
    "same cell"
    (Generator.eval g a ~workload:w0)
    (Generator.eval g b ~workload:w0)

let test_eval_matches_rules () =
  (* The materialized CNF rule set is semantically equivalent to the
     procedural evaluation. *)
  let rules = Generator.to_rules g in
  Alcotest.(check bool) "conflict free" true (Rules.conflict_free rules);
  let rng = Rng.create 77 in
  for _ = 1 to 200 do
    let c = Space.random rng small_space in
    let w = [| Rng.float rng 1.0; Rng.float rng 1.0 |] in
    let joint = Array.append c w in
    Alcotest.(check (float 1e-9))
      "rules agree with eval"
      (Generator.eval g c ~workload:w)
      (Rules.eval rules joint)
  done

let test_to_rules_limit () =
  Alcotest.check_raises "too many"
    (Invalid_argument "Generator.to_rules: too many cells to materialize") (fun () ->
      ignore (Generator.to_rules ~max_rules:3 g))

let test_objective_direction () =
  let obj = Generator.objective g ~workload:w0 in
  Alcotest.(check bool) "higher is better" true
    (obj.Objective.direction = Objective.Higher_is_better);
  Alcotest.(check (float 1e-12))
    "matches eval"
    (Generator.eval g [| 3.0; 7.0; 5.0 |] ~workload:w0)
    (obj.Objective.eval [| 3.0; 7.0; 5.0 |])

let test_workload_arity_checked () =
  Alcotest.check_raises "arity" (Invalid_argument "Generator: workload arity mismatch")
    (fun () -> ignore (Generator.eval g [| 1.0; 1.0; 1.0 |] ~workload:[| 0.5 |]))

let test_mix_normalizes () =
  let m = Generator.mix ~browsing:2.0 ~shopping:1.0 ~ordering:1.0 in
  Alcotest.(check (array (float 1e-12))) "normalized" [| 0.5; 0.25; 0.25 |] m

let test_mix_invalid () =
  Alcotest.check_raises "zero total" (Invalid_argument "Generator.mix: non-positive total")
    (fun () -> ignore (Generator.mix ~browsing:0.0 ~shopping:0.0 ~ordering:0.0))

let test_synthetic_webservice_shape () =
  let s = Generator.synthetic_webservice () in
  let space = Generator.space s in
  Alcotest.(check int) "15 parameters" 15 (Space.dims space);
  Alcotest.(check int) "3 workload dims" 3 (Generator.workload_dims s);
  let names = Array.map (fun p -> p.Param.name) (Space.params space) in
  Alcotest.(check string) "first is D" "D" names.(0);
  Alcotest.(check string) "last is R" "R" names.(14);
  (* H (index 4) and M (index 9) are the irrelevant two. *)
  Alcotest.(check (list int)) "irrelevant" [ 4; 9 ] (Generator.irrelevant s)

let test_synthetic_irrelevant_h_m () =
  let s = Generator.synthetic_webservice () in
  let w = Generator.shopping_mix in
  let rng = Rng.create 3 in
  for _ = 1 to 50 do
    let c = Space.random rng (Generator.space s) in
    let base = Generator.eval s c ~workload:w in
    let c' = Array.copy c in
    c'.(4) <- float_of_int (1 + Rng.int rng 10);
    c'.(9) <- float_of_int (1 + Rng.int rng 10);
    Alcotest.(check (float 1e-12)) "H and M irrelevant" base
      (Generator.eval s c' ~workload:w)
  done

let test_objective_of_rules_tunable () =
  (* Hand-written rules in the paper's notation drive a tunable
     objective end to end: the tuner finds the best rule's region. *)
  let tuning_space =
    Space.create
      [
        Param.int_range ~name:"x" ~lo:0 ~hi:10 ~default:0 ();
        Param.int_range ~name:"y" ~lo:0 ~hi:10 ~default:0 ();
      ]
  in
  let rules =
    Harmony_datagen.Rules.of_text ~num_vars:3
      ~ranges:[| (0.0, 10.0); (0.0, 10.0); (0.0, 1.0) |]
      (* The jackpot needs a heavy workload (v2) and x in [4,6]. *)
      "50 <- 4 <= v0 <= 6 & v2 >= 0.5\n30 <- v0 >= 7\n10 <-\n"
  in
  let heavy =
    Generator.objective_of_rules rules ~space:tuning_space ~workload:[| 0.8 |] ()
  in
  let outcome = Harmony.Tuner.tune heavy in
  Alcotest.(check (float 1e-12)) "finds the jackpot rule" 50.0
    outcome.Harmony.Tuner.best_performance;
  Alcotest.(check bool) "in the rule's region" true
    (outcome.Harmony.Tuner.best_config.(0) >= 4.0
    && outcome.Harmony.Tuner.best_config.(0) <= 6.0);
  (* Under a light workload the jackpot rule can't fire. *)
  let light =
    Generator.objective_of_rules rules ~space:tuning_space ~workload:[| 0.2 |] ()
  in
  let outcome_light = Harmony.Tuner.tune light in
  Alcotest.(check (float 1e-12)) "best without the jackpot" 30.0
    outcome_light.Harmony.Tuner.best_performance

let test_objective_of_rules_arity () =
  let rules =
    Harmony_datagen.Rules.of_text ~num_vars:1 ~ranges:[| (0.0, 1.0) |] "1 <-\n"
  in
  Alcotest.check_raises "arity"
    (Invalid_argument "Generator.objective_of_rules: rule arity mismatch")
    (fun () -> ignore (Generator.objective_of_rules rules ~space:small_space ()))

let suite =
  [
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "seed changes data" `Quick test_seed_changes_data;
    Alcotest.test_case "irrelevant truly irrelevant" `Quick test_irrelevant_truly_irrelevant;
    Alcotest.test_case "relevant params matter" `Quick test_relevant_params_matter;
    Alcotest.test_case "workload matters" `Quick test_workload_matters;
    Alcotest.test_case "perf range" `Quick test_perf_range;
    Alcotest.test_case "quantization piecewise constant" `Quick test_quantization_piecewise_constant;
    Alcotest.test_case "eval matches rules" `Quick test_eval_matches_rules;
    Alcotest.test_case "to_rules limit" `Quick test_to_rules_limit;
    Alcotest.test_case "objective direction" `Quick test_objective_direction;
    Alcotest.test_case "workload arity" `Quick test_workload_arity_checked;
    Alcotest.test_case "mix normalizes" `Quick test_mix_normalizes;
    Alcotest.test_case "mix invalid" `Quick test_mix_invalid;
    Alcotest.test_case "synthetic webservice shape" `Quick test_synthetic_webservice_shape;
    Alcotest.test_case "synthetic H M irrelevant" `Quick test_synthetic_irrelevant_h_m;
    Alcotest.test_case "objective of rules tunable" `Quick test_objective_of_rules_tunable;
    Alcotest.test_case "objective of rules arity" `Quick test_objective_of_rules_arity;
  ]
