module Rsl = Harmony_param.Rsl
module Rng = Harmony_numerics.Rng

let paper_spec =
  "{ harmonyBundle B { int {1 8 1} }}\n{ harmonyBundle C { int {1 9-$B 1} }}"

let test_parse_simple () =
  let t = Rsl.parse "{ harmonyBundle B { int {1 10 1}}}" in
  Alcotest.(check (list string)) "names" [ "B" ] (Rsl.names t)

let test_parse_paper_example () =
  let t = Rsl.parse paper_spec in
  Alcotest.(check (list string)) "names" [ "B"; "C" ] (Rsl.names t)

let test_roundtrip () =
  let t = Rsl.parse paper_spec in
  let t' = Rsl.parse (Rsl.to_string t) in
  Alcotest.(check string) "stable" (Rsl.to_string t) (Rsl.to_string t')

let test_parse_expressions () =
  let t =
    Rsl.parse
      "{ harmonyBundle A { int {1 20 1}}}\n\
       { harmonyBundle B { int {(2*$A+1)/3 20-$A 2} }}"
  in
  let lo, hi, step = Rsl.bounds t [| 6; 0 |] 1 in
  Alcotest.(check (triple int int int)) "evaluated" (4, 14, 2) (lo, hi, step)

let test_parse_negative_literal () =
  let t = Rsl.parse "{ harmonyBundle A { int {-5 5 1}}}" in
  let lo, hi, _ = Rsl.bounds t [| 0 |] 0 in
  Alcotest.(check (pair int int)) "negative lo" (-5, 5) (lo, hi)

let test_parse_errors () =
  let expect_fail s =
    match Rsl.parse s with
    | exception Rsl.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" s
  in
  expect_fail "";
  expect_fail "{ harmonyBundle }";
  expect_fail "{ harmonyBundle B { int {1 10} }}";
  expect_fail "{ harmonyBundle B { int {1 10 1} }";
  expect_fail "{ harmonyBundle B { int {1 $ 1} }}";
  (* Forward reference is rejected. *)
  expect_fail
    "{ harmonyBundle B { int {1 $C 1} }}\n{ harmonyBundle C { int {1 5 1} }}";
  (* Duplicate names are rejected. *)
  expect_fail
    "{ harmonyBundle B { int {1 5 1} }}\n{ harmonyBundle B { int {1 5 1} }}"

let test_eval_expr () =
  let lookup = function "X" -> 7 | _ -> raise Not_found in
  Alcotest.(check int) "arith" 11 (Rsl.eval_expr lookup (Rsl.Add (Rsl.Const 4, Rsl.Ref "X")));
  Alcotest.(check int) "neg" (-7) (Rsl.eval_expr lookup (Rsl.Neg (Rsl.Ref "X")));
  Alcotest.(check int) "div" 3 (Rsl.eval_expr lookup (Rsl.Div (Rsl.Ref "X", Rsl.Const 2)))

let test_feasible_count_paper () =
  (* Sum over B of (9 - B) for B in 1..8 = 36. *)
  let t = Rsl.parse paper_spec in
  Alcotest.(check int) "count" 36 (Rsl.feasible_count t)

let test_feasible_count_limit () =
  let t = Rsl.parse paper_spec in
  Alcotest.(check int) "limited" 10 (Rsl.feasible_count ~limit:10 t)

let test_enumerate_matches_count () =
  let t = Rsl.parse paper_spec in
  let n = Seq.fold_left (fun acc _ -> acc + 1) 0 (Rsl.enumerate t) in
  Alcotest.(check int) "36 configs" 36 n

let test_enumerate_all_feasible () =
  let t = Rsl.parse paper_spec in
  Seq.iter
    (fun v -> Alcotest.(check bool) "feasible" true (Rsl.is_feasible t v))
    (Rsl.enumerate t)

let test_enumerate_meaningful_only () =
  (* The paper: configurations with B=6 and C=6 are discarded. *)
  let t = Rsl.parse paper_spec in
  let has v = Seq.exists (fun x -> x = v) (Rsl.enumerate t) in
  Alcotest.(check bool) "B=6 C=3 kept" true (has [| 6; 3 |]);
  Alcotest.(check bool) "B=6 C=6 pruned" false (has [| 6; 6 |])

let test_is_feasible () =
  let t = Rsl.parse paper_spec in
  Alcotest.(check bool) "ok" true (Rsl.is_feasible t [| 3; 5 |]);
  Alcotest.(check bool) "C too big" false (Rsl.is_feasible t [| 8; 2 |]);
  Alcotest.(check bool) "below lo" false (Rsl.is_feasible t [| 0; 1 |]);
  Alcotest.(check bool) "arity" false (Rsl.is_feasible t [| 3 |])

let test_is_feasible_step () =
  let t = Rsl.parse "{ harmonyBundle A { int {0 10 3} }}" in
  Alcotest.(check bool) "on step" true (Rsl.is_feasible t [| 9 |]);
  Alcotest.(check bool) "off step" false (Rsl.is_feasible t [| 7 |])

let test_sample_feasible () =
  let t = Rsl.parse paper_spec in
  let rng = Rng.create 9 in
  for _ = 1 to 200 do
    match Rsl.sample rng t with
    | Some v -> Alcotest.(check bool) "feasible" true (Rsl.is_feasible t v)
    | None -> Alcotest.fail "sampling a satisfiable spec returned None"
  done

let test_repair_feasible () =
  let t = Rsl.parse paper_spec in
  let r = Rsl.repair t [| 8.0; 7.0 |] in
  Alcotest.(check bool) "repaired into range" true
    (Rsl.is_feasible t (Array.map int_of_float r))

let test_repair_identity_on_feasible () =
  let t = Rsl.parse paper_spec in
  Alcotest.(check (array (float 1e-9))) "unchanged" [| 3.0; 4.0 |]
    (Rsl.repair t [| 3.0; 4.0 |])

let test_static_bounds () =
  let t = Rsl.parse paper_spec in
  Alcotest.(check (array (pair int int)))
    "interval hull" [| (1, 8); (1, 8) |] (Rsl.static_bounds t)

let test_static_bounds_arithmetic () =
  let t =
    Rsl.parse
      "{ harmonyBundle A { int {2 5 1}}}\n{ harmonyBundle B { int {-$A 3*$A 1} }}"
  in
  Alcotest.(check (array (pair int int)))
    "interval arithmetic" [| (2, 5); (-5, 15) |] (Rsl.static_bounds t)

let test_static_bounds_empty () =
  let t = Rsl.parse "{ harmonyBundle A { int {5 2 1}}}" in
  Alcotest.check_raises "always empty"
    (Invalid_argument "Rsl.static_bounds: bundle A is always empty") (fun () ->
      ignore (Rsl.static_bounds t))

let test_to_space () =
  let t = Rsl.parse paper_spec in
  let space = Rsl.to_space t in
  Alcotest.(check int) "dims" 2 (Harmony_param.Space.dims space);
  let p = Harmony_param.Space.param space 1 in
  Alcotest.(check string) "name" "C" p.Harmony_param.Param.name;
  Alcotest.(check (float 1e-9)) "box lo" 1.0 p.Harmony_param.Param.min_value;
  Alcotest.(check (float 1e-9)) "box hi" 8.0 p.Harmony_param.Param.max_value;
  (* Every feasible configuration lies inside the box space. *)
  Seq.iter
    (fun v ->
      Alcotest.(check bool) "feasible inside box" true
        (Harmony_param.Space.is_valid space (Array.map float_of_int v)))
    (Rsl.enumerate t)

let test_of_bundles_validation () =
  Alcotest.check_raises "forward ref"
    (Invalid_argument "Rsl.of_bundles: bundle A refers to B which is not earlier")
    (fun () ->
      ignore
        (Rsl.of_bundles
           [ { Rsl.name = "A"; lo = Rsl.Const 1; hi = Rsl.Ref "B"; step = Rsl.Const 1 } ]))

let test_partition_composition_count () =
  (* k rows into n blocks: the restricted space has C(k-1, n-1)
     configurations (compositions of k). *)
  let t = Harmony_experiments.Fig10.partition_spec ~rows:10 ~blocks:3 in
  Alcotest.(check int) "C(9,2)" 36 (Rsl.feasible_count t)

(* Property: for the row-partition family, the enumerator's count
   equals the closed form C(rows-1, blocks-1) (compositions of rows
   into blocks positive parts). *)
let binomial n k =
  let acc = ref 1 in
  for i = 1 to k do
    acc := !acc * (n - k + i) / i
  done;
  !acc

let prop_partition_counts =
  QCheck2.Test.make ~name:"partition spec counts = C(rows-1, blocks-1)" ~count:50
    QCheck2.Gen.(pair (int_range 4 14) (int_range 2 4))
    (fun (rows, blocks) ->
      let t = Harmony_experiments.Fig10.partition_spec ~rows ~blocks in
      Rsl.feasible_count t = binomial (rows - 1) (blocks - 1))

(* Property: every enumerated feasible configuration lies inside the
   interval-arithmetic static bounds. *)
let prop_static_bounds_hull =
  QCheck2.Test.make ~name:"feasible points inside static bounds" ~count:50
    QCheck2.Gen.(pair (int_range 4 12) (int_range 2 4))
    (fun (rows, blocks) ->
      let t = Harmony_experiments.Fig10.partition_spec ~rows ~blocks in
      let boxes = Rsl.static_bounds t in
      Seq.for_all
        (fun v ->
          Array.for_all Fun.id
            (Array.mapi
               (fun i x ->
                 let lo, hi = boxes.(i) in
                 x >= lo && x <= hi)
               v))
        (Rsl.enumerate t))

(* Property: random well-formed bundle ASTs survive a
   to_string/parse round trip unchanged. *)
let rec expr_gen names depth =
  QCheck2.Gen.(
    let leaf =
      if names = [] then [ (int_range 0 30 >|= fun k -> Rsl.Const k) ]
      else
        [
          (int_range 0 30 >|= fun k -> Rsl.Const k);
          (oneofl names >|= fun n -> Rsl.Ref n);
        ]
    in
    if depth <= 0 then oneof leaf
    else
      let sub = expr_gen names (depth - 1) in
      oneof
        (leaf
        @ [
            (sub >|= fun e -> Rsl.Neg e);
            ( let* a = sub in
              let* b = sub in
              oneofl [ Rsl.Add (a, b); Rsl.Sub (a, b); Rsl.Mul (a, b) ] );
          ]))

let spec_gen =
  QCheck2.Gen.(
    let* n = int_range 1 4 in
    let rec build i earlier acc =
      if i >= n then return (List.rev acc)
      else
        let name = Printf.sprintf "P%d" i in
        let* lo = expr_gen earlier 2 in
        let* hi = expr_gen earlier 2 in
        let* step = int_range 1 3 in
        build (i + 1) (name :: earlier)
          ({ Rsl.name; lo; hi; step = Rsl.Const step } :: acc)
    in
    build 0 [] [])

let prop_ast_roundtrip =
  QCheck2.Test.make ~name:"AST survives to_string/parse" ~count:200 spec_gen
    (fun bundles ->
      match Rsl.of_bundles bundles with
      | exception Invalid_argument _ -> true (* not well-formed; skip *)
      | t -> (
          match Rsl.parse (Rsl.to_string t) with
          | exception Rsl.Parse_error _ -> false
          | t' -> Rsl.to_string t = Rsl.to_string t'))

(* Property: repair always lands feasible for the paper spec (the
   spec's conditional ranges are never empty). *)
let prop_repair_feasible =
  let t = Rsl.parse paper_spec in
  QCheck2.Test.make ~name:"repair lands feasible" ~count:300
    QCheck2.Gen.(pair (float_range (-5.0) 20.0) (float_range (-5.0) 20.0))
    (fun (a, b) ->
      let r = Rsl.repair t [| a; b |] in
      Rsl.is_feasible t (Array.map int_of_float r))

let suite =
  [
    Alcotest.test_case "parse simple" `Quick test_parse_simple;
    Alcotest.test_case "parse paper example" `Quick test_parse_paper_example;
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "parse expressions" `Quick test_parse_expressions;
    Alcotest.test_case "parse negative literal" `Quick test_parse_negative_literal;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "eval expr" `Quick test_eval_expr;
    Alcotest.test_case "feasible count (paper)" `Quick test_feasible_count_paper;
    Alcotest.test_case "feasible count limit" `Quick test_feasible_count_limit;
    Alcotest.test_case "enumerate matches count" `Quick test_enumerate_matches_count;
    Alcotest.test_case "enumerate all feasible" `Quick test_enumerate_all_feasible;
    Alcotest.test_case "enumerate meaningful only" `Quick test_enumerate_meaningful_only;
    Alcotest.test_case "is_feasible" `Quick test_is_feasible;
    Alcotest.test_case "is_feasible step" `Quick test_is_feasible_step;
    Alcotest.test_case "sample feasible" `Quick test_sample_feasible;
    Alcotest.test_case "repair feasible" `Quick test_repair_feasible;
    Alcotest.test_case "repair identity" `Quick test_repair_identity_on_feasible;
    Alcotest.test_case "static bounds" `Quick test_static_bounds;
    Alcotest.test_case "static bounds arithmetic" `Quick test_static_bounds_arithmetic;
    Alcotest.test_case "static bounds empty" `Quick test_static_bounds_empty;
    Alcotest.test_case "to_space" `Quick test_to_space;
    Alcotest.test_case "of_bundles validation" `Quick test_of_bundles_validation;
    Alcotest.test_case "partition composition count" `Quick test_partition_composition_count;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_partition_counts; prop_static_bounds_hull; prop_repair_feasible;
        prop_ast_roundtrip;
      ]
