examples/blocked_matmul.mli:
