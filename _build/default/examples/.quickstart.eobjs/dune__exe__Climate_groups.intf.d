examples/climate_groups.mli:
