examples/quickstart.mli:
