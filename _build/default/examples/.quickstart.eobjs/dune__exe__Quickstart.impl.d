examples/quickstart.ml: Array Format Harmony Harmony_objective Harmony_param Objective Param Sensitivity Space Tuner
