examples/history_reuse.mli:
