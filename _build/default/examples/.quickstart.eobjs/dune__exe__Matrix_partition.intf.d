examples/matrix_partition.mli:
