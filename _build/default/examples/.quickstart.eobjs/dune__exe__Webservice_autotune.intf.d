examples/webservice_autotune.mli:
