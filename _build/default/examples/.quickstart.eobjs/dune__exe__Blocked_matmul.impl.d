examples/blocked_matmul.ml: Array Baselines Format Harmony Harmony_cachesim Harmony_objective Harmony_param List Matmul Printf Sensitivity Tuner
