examples/webservice_autotune.ml: Format Harmony Harmony_param Harmony_webservice List Model Sensitivity Simulation Subspace Tpcw Tuner Wsconfig
