examples/history_reuse.ml: Analyzer Filename Format Harmony Harmony_numerics Harmony_objective Harmony_webservice History List Model Sys Tpcw Tuner
