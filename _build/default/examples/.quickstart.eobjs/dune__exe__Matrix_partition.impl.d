examples/matrix_partition.ml: Array Float Format Harmony Harmony_objective Harmony_param List Objective Param Printf Rsl Space String Tuner
