examples/climate_groups.ml: Array Float Format Harmony List Printf Server Simplex
