(* Quickstart: define a search space and an objective, let Active
   Harmony tune it, and inspect the tuning trace.

   Run with: dune exec examples/quickstart.exe *)

open Harmony
open Harmony_param
open Harmony_objective

let () =
  (* 1. Declare the tunable parameters: name, range, step, default —
     exactly the four values the paper's resource specification uses. *)
  let space =
    Space.create
      [
        Param.int_range ~name:"threads" ~lo:1 ~hi:64 ~default:4 ();
        Param.int_range ~name:"buffer_kb" ~lo:1 ~hi:256 ~default:16 ();
        Param.int_range ~name:"batch" ~lo:1 ~hi:100 ~default:10 ();
      ]
  in

  (* 2. Wrap the system to tune as an objective.  Here: a synthetic
     "throughput" with an interior optimum at (16 threads, 64 KB,
     40 batch) — real systems would run a benchmark instead. *)
  let throughput c =
    let score target v =
      let d = (v -. target) /. target in
      exp (-.(d *. d))
    in
    100.0 *. score 16.0 c.(0) *. score 64.0 c.(1) *. score 40.0 c.(2)
  in
  let objective =
    Objective.create ~space ~direction:Objective.Higher_is_better throughput
  in

  (* 3. Tune.  The default options use the paper's improved interior
     initial simplex. *)
  let outcome = Tuner.tune objective in
  Format.printf "best configuration: %a@."
    (Space.pp_config space) outcome.Tuner.best_config;
  Format.printf "best throughput:    %.2f@." outcome.Tuner.best_performance;
  Format.printf "evaluations spent:  %d@." outcome.Tuner.evaluations;

  (* 4. Summarize the tuning process the way the paper's tables do. *)
  let metrics = Tuner.Metrics.of_outcome objective outcome in
  Format.printf "trace summary:      %a@." Tuner.Metrics.pp metrics;

  (* 5. Which parameters were worth tuning?  The prioritizing tool
     sweeps one parameter at a time. *)
  let report = Sensitivity.analyze objective in
  Format.printf "@.parameter sensitivities:@.%a@." Sensitivity.pp report
