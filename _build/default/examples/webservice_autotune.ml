(* Tuning the full three-tier web service, end to end, against the
   discrete-event simulator (the "real" system of this reproduction):

   1. prioritize the ten parameters on the fast analytic model,
   2. tune only the top-4 on the (slower, stochastic) simulator,
   3. compare default vs tuned WIPS on the simulator.

   Run with: dune exec examples/webservice_autotune.exe *)

open Harmony
open Harmony_webservice
module Space = Harmony_param.Space

let mix = Tpcw.shopping

let () =
  Format.printf "workload: %s (%.0f%% browse)@." mix.Tpcw.label
    (100.0 *. Tpcw.browse_fraction mix);

  (* Fast sweep on the analytic model to rank the parameters — the
     paper amortizes this one-off cost over many runs. *)
  let model_obj = Model.objective ~mix () in
  let report = Sensitivity.analyze model_obj in
  Format.printf "@.sensitivities (analytic model):@.%a@." Sensitivity.pp report;

  (* Tune the four most performance-critical parameters against the
     discrete-event simulator.  Short measurement windows keep each
     evaluation cheap, like the paper's few-time-step explorations. *)
  let sim_options =
    { Simulation.default_options with
      Simulation.warmup_ms = 4_000.0; horizon_ms = 25_000.0;
      (* Browsers stay within a Browse/Order session 50% of the time:
         bursty, session-like arrivals with the same stationary mix. *)
      session_persistence = 0.5 }
  in
  let sim_obj = Simulation.objective ~options:sim_options ~mix () in
  let indices = Sensitivity.top_n report 4 in
  Format.printf "tuning top-4 parameters:";
  List.iter
    (fun i -> Format.printf " %s" (Space.param Wsconfig.space i).Harmony_param.Param.name)
    indices;
  Format.printf "@.";
  let sub = Subspace.project sim_obj ~indices () in
  let outcome =
    Tuner.tune
      ~options:{ Tuner.default_options with Tuner.max_evaluations = 80 }
      (Subspace.objective sub)
  in
  let tuned_config = Subspace.embed sub outcome.Tuner.best_config in

  (* Validate on the simulator with a longer measurement window. *)
  let validate config =
    (Simulation.run ~options:{ sim_options with Simulation.horizon_ms = 60_000.0; seed = 99 }
       (Wsconfig.of_config config) ~mix)
      .Simulation.wips
  in
  let default_wips = validate (Wsconfig.to_config Wsconfig.default) in
  let tuned_wips = validate tuned_config in
  Format.printf "@.default config: %a@." (Space.pp_config Wsconfig.space)
    (Wsconfig.to_config Wsconfig.default);
  Format.printf "tuned config:   %a@." (Space.pp_config Wsconfig.space) tuned_config;
  Format.printf "@.simulated WIPS: default %.2f -> tuned %.2f (%+.1f%%)@."
    default_wips tuned_wips
    (100.0 *. ((tuned_wips /. default_wips) -. 1.0));
  let m = Tuner.Metrics.of_outcome (Subspace.objective sub) outcome in
  Format.printf "tuning trace:   %a@." Tuner.Metrics.pp m
