(* Scientific-library tuning: block (tile) sizes of a blocked matrix
   multiplication against a simulated two-level cache hierarchy — the
   kind of library tuning the paper's introduction motivates.

   The full workflow: prioritize the three block-size parameters, tune
   with Active Harmony, compare against the unblocked loops and an
   exhaustive sweep of the block space.

   Run with: dune exec examples/blocked_matmul.exe *)

open Harmony
open Harmony_cachesim
module Space = Harmony_param.Space

let m, n, k = (48, 48, 48)

let () =
  Format.printf "tuning %dx%dx%d blocked matmul (8KB L1 / 64KB L2)@.@." m n k;
  let objective = Matmul.objective ~m ~n ~k () in

  (* Which block dimension matters most on this hierarchy? *)
  let report = Sensitivity.analyze objective in
  Format.printf "block-size sensitivities:@.%a@." Sensitivity.pp report;

  (* Tune all three with Active Harmony. *)
  let outcome =
    Tuner.tune ~options:{ Tuner.default_options with Tuner.max_evaluations = 120 }
      objective
  in
  let best = outcome.Tuner.best_config in
  let show label mb nb kb =
    let r = Matmul.run ~m ~n ~k ~mb ~nb ~kb () in
    Format.printf "%-26s cycles=%10.0f  cyc/flop=%5.2f  L1 hit=%5.1f%%@." label
      r.Matmul.cycles
      (r.Matmul.cycles /. float_of_int r.Matmul.flops)
      (100.0 *. r.Matmul.l1_hit_rate);
    r.Matmul.cycles
  in
  Format.printf "@.";
  let unblocked = show (Printf.sprintf "unblocked (mb=nb=kb=%d)" m) m n k in
  let naive8 = show "naive blocks (8,8,8)" 8 8 8 in
  let tuned =
    show
      (Format.asprintf "tuned %a" (Space.pp_config objective.Harmony_objective.Objective.space) best)
      (int_of_float best.(0)) (int_of_float best.(1)) (int_of_float best.(2))
  in
  ignore naive8;
  Format.printf "@.speedup over unblocked: %.2fx (in %d simulated runs)@."
    (unblocked /. tuned) outcome.Tuner.evaluations;

  (* How close to the optimum?  Exhaust a coarser (step-8) block grid
     as the reference. *)
  let coarse_space =
    Harmony_param.Space.create
      (List.map
         (fun name ->
           Harmony_param.Param.int_range ~name ~lo:8 ~hi:m ~step:8 ~default:8 ())
         [ "mb"; "nb"; "kb" ])
  in
  let coarse =
    Harmony_objective.Objective.create ~space:coarse_space
      ~direction:Harmony_objective.Objective.Lower_is_better (fun conf ->
        (Matmul.run ~m ~n ~k ~mb:(int_of_float conf.(0)) ~nb:(int_of_float conf.(1))
           ~kb:(int_of_float conf.(2)) ())
          .Matmul.cycles)
  in
  let sweep = Baselines.exhaustive ~limit:10_000 coarse in
  Format.printf "coarse-grid exhaustive optimum: %.0f cycles (%d configs)@."
    sweep.Baselines.best_performance sweep.Baselines.evaluations;
  Format.printf "tuner at %.1f%% of that reference's efficiency@."
    (100.0 *. sweep.Baselines.best_performance /. tuned)
