(* Parameter restriction (Appendix B): tuning how a k-row matrix is
   partitioned into n row blocks across worker groups.

   Block sizes must sum to k with every block non-empty, so most of
   the naive (size_1, ..., size_{n-1}) box is infeasible.  The
   resource specification language prunes it: block i's range is
   conditioned on blocks 1..i-1.  We count the reduction, then tune a
   synthetic load-balance cost over the restricted space.

   Run with: dune exec examples/matrix_partition.exe *)

open Harmony
open Harmony_param
open Harmony_objective

let rows = 60
let blocks = 4

(* Heterogeneous workers: relative speeds of the n groups.  The ideal
   partition sizes are proportional to the speeds. *)
let speeds = [| 1.0; 2.0; 3.0; 4.0 |]

(* Completion time of a partition = the slowest group's time. *)
let completion sizes =
  let t = ref 0.0 in
  Array.iteri (fun i s -> t := Float.max !t (s /. speeds.(i))) sizes;
  !t

let sizes_of_config c =
  let free = Array.map int_of_float c in
  let used = Array.fold_left ( + ) 0 free in
  Array.append (Array.map float_of_int free) [| float_of_int (rows - used) |]

let () =
  (* The restricted specification: P1..P3 free, P4 determined. *)
  let spec =
    Rsl.parse
      (String.concat "\n"
         (List.init (blocks - 1) (fun i ->
              let i = i + 1 in
              let prior = List.init (i - 1) (fun j -> Printf.sprintf "-$P%d" (j + 1)) in
              Printf.sprintf "{ harmonyBundle P%d { int {1 %d%s 1} }}" i
                (rows - (blocks - i))
                (String.concat "" prior))))
  in
  Format.printf "specification:@.%s@." (Rsl.to_string spec);
  let restricted = Rsl.feasible_count spec in
  let unrestricted =
    int_of_float (float_of_int rows ** float_of_int (blocks - 1))
  in
  Format.printf "search space: %d unrestricted -> %d restricted (%.1f%% pruned)@."
    unrestricted restricted
    (100.0 *. (1.0 -. (float_of_int restricted /. float_of_int unrestricted)));

  (* Tune over the free sizes.  Infeasible proposals (blocks that
     would leave no rows for the rest) pay a penalty proportional to
     the violation, which gives the simplex a slope back into the
     feasible region; Rsl.repair then projects the final answer. *)
  let space =
    Space.create
      (List.init (blocks - 1) (fun i ->
           Param.int_range
             ~name:(Printf.sprintf "P%d" (i + 1))
             ~lo:1
             ~hi:(rows - blocks + 1)
             ~default:(rows / blocks) ()))
  in
  let objective =
    Objective.create ~space ~direction:Objective.Lower_is_better (fun c ->
        let used = Array.fold_left ( +. ) 0.0 c in
        let remaining = float_of_int rows -. used in
        if remaining < 1.0 then 1000.0 +. (1.0 -. remaining)
        else completion (sizes_of_config c))
  in
  let outcome = Tuner.tune objective in
  let best = Rsl.repair spec outcome.Tuner.best_config in
  let sizes = sizes_of_config best in
  Format.printf "@.best partition:";
  Array.iteri (fun i s -> Format.printf " group%d=%g" (i + 1) s) sizes;
  Format.printf "@.completion time: %.3f (ideal %.3f)@."
    outcome.Tuner.best_performance
    (float_of_int rows /. Array.fold_left ( +. ) 0.0 speeds);
  Format.printf "evaluations: %d@." outcome.Tuner.evaluations
