(* Using information from prior runs — the paper's title feature.

   Session 1 tunes the web service under a browsing-heavy workload and
   persists the experience database to disk.  Session 2 (a "restart")
   loads the database, characterizes the incoming shopping workload by
   observing interaction frequencies, matches the closest experience,
   and warm-starts the tuner from it.  Compare the cold and warm
   tuning traces.

   Run with: dune exec examples/history_reuse.exe *)

open Harmony
open Harmony_webservice
module Rng = Harmony_numerics.Rng
module Objective = Harmony_objective.Objective

let db_path = Filename.temp_file "harmony_experience" ".db"
let options = { Tuner.default_options with Tuner.max_evaluations = 150 }

(* The live system: the analytic model with 3% run-to-run variation. *)
let live mix seed =
  Objective.with_noise (Rng.create seed) ~level:0.03 (Model.objective ~mix ())

let summarize label obj outcome reference =
  let m = Tuner.Metrics.of_outcome ~reference obj outcome in
  Format.printf "%-22s %a@." label Tuner.Metrics.pp m

let () =
  (* ---- Session 1: gather experience under the browsing workload. *)
  let browsing_obj = live Tpcw.browsing 1 in
  let first_run = Tuner.tune ~options browsing_obj in
  let db = History.create () in
  let browsing_chars =
    Tpcw.observed_frequencies (Rng.create 2) Tpcw.browsing ~samples:500
  in
  ignore (History.add_outcome db ~label:"browsing" ~characteristics:browsing_chars first_run);
  History.save db db_path;
  Format.printf "session 1: tuned %s, stored %d measurements in %s@."
    Tpcw.browsing.Tpcw.label
    (List.length first_run.Tuner.trace)
    db_path;

  (* ---- Session 2: a restart facing the shopping workload. *)
  let loaded = History.load db_path in
  Format.printf "session 2: loaded %d experience entr%s@." (History.size loaded)
    (if History.size loaded = 1 then "y" else "ies");
  let shopping_obj = live Tpcw.shopping 3 in

  (* The data analyzer observes a few hundred requests to characterize
     the incoming workload... *)
  let observed =
    Analyzer.characterize
      ~probe:(fun () ->
        Tpcw.observed_frequencies (Rng.create 4) Tpcw.shopping ~samples:100)
      ~samples:5
  in
  let analyzer = Analyzer.create loaded in
  (match Analyzer.classify analyzer observed with
  | Some e -> Format.printf "classified incoming workload as: %s@." e.History.label
  | None -> Format.printf "no matching experience@.");

  (* ...and tunes with and without that experience. *)
  let cold = Tuner.tune ~options shopping_obj in
  let warm, prep =
    Analyzer.tune_with_experience ~options analyzer shopping_obj
      ~characteristics:observed
  in
  Format.printf "warm start seeded from experience: %b@."
    (prep.Analyzer.matched <> None);
  let reference =
    Objective.worst_of shopping_obj
      [| cold.Tuner.best_performance; warm.Tuner.best_performance |]
  in
  Format.printf "@.shopping workload, same budget:@.";
  summarize "cold start" shopping_obj cold reference;
  summarize "with prior histories" shopping_obj warm reference;
  Sys.remove db_path
