(** A set-associative LRU cache simulator.

    The substrate for the scientific-library tuning scenario the
    paper's introduction motivates: tile-size tuning of blocked linear
    algebra is only meaningful against a memory hierarchy, so we build
    one.  Addresses are byte addresses; a cache is defined by total
    size, line size and associativity (1 = direct-mapped). *)

type t

val create : size_bytes:int -> line_bytes:int -> associativity:int -> t
(** @raise Invalid_argument unless [line_bytes] and the implied set
    count are powers of two, sizes are positive, and
    [associativity >= 1] divides the line count. *)

val access : t -> int -> bool
(** [access t address] touches one byte address; [true] on hit.  On a
    miss the line is filled and the LRU line of its set evicted. *)

val accesses : t -> int
val hits : t -> int
val misses : t -> int

val hit_rate : t -> float
(** [0.] before the first access. *)

val reset : t -> unit
(** Clear contents and counters. *)

val size_bytes : t -> int
val line_bytes : t -> int
val associativity : t -> int
