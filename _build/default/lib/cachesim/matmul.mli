(** Blocked matrix multiplication against the cache simulator.

    C (m x n) += A (m x k) * B (k x n), all row-major double-precision
    arrays, computed in (mb x nb x kb) blocks.  The element-access
    trace is replayed through an L1/L2 hierarchy and costed: one cycle
    per access plus per-level miss penalties — the classic tile-size
    tuning problem for scientific libraries. *)

type hierarchy = {
  l1 : Cache.t;
  l2 : Cache.t;
  l1_miss_cycles : int;  (** extra cycles on an L1 miss that hits L2 *)
  l2_miss_cycles : int;  (** extra cycles on an L2 miss (memory) *)
}

val default_hierarchy : unit -> hierarchy
(** 8 KB 2-way L1 (64-byte lines, 10-cycle miss), 64 KB 4-way L2
    (60-cycle miss): deliberately small so modest matrices exercise
    blocking. *)

type result = {
  cycles : float;
  l1_hit_rate : float;
  l2_hit_rate : float;  (** of the accesses that missed L1 *)
  flops : int;          (** 2*m*n*k *)
}

val run :
  ?hierarchy:hierarchy -> m:int -> n:int -> k:int ->
  mb:int -> nb:int -> kb:int -> unit -> result
(** Simulate one blocked multiplication.  Block sizes are clamped into
    [1, dimension].  The hierarchy is reset first.
    @raise Invalid_argument on non-positive dimensions. *)

val space : max_block:int -> Harmony_param.Space.t
(** The 3-parameter (mb, nb, kb) tuning space, step 4, default 8. *)

val objective :
  ?hierarchy:hierarchy -> m:int -> n:int -> k:int -> unit ->
  Harmony_objective.Objective.t
(** Lower-is-better simulated cycles over {!space} (block sizes capped
    at the matrix dimensions). *)
