type t = {
  size_bytes : int;
  line_bytes : int;
  associativity : int;
  sets : int;
  (* tags.(set * associativity + way): line tag, -1 when invalid.
     stamps mirror tags with the last-use counter for LRU. *)
  tags : int array;
  stamps : int array;
  mutable clock : int;
  mutable accesses : int;
  mutable hits : int;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ~size_bytes ~line_bytes ~associativity =
  if size_bytes <= 0 || line_bytes <= 0 then
    invalid_arg "Cache.create: non-positive size";
  if associativity < 1 then invalid_arg "Cache.create: associativity < 1";
  if not (is_power_of_two line_bytes) then
    invalid_arg "Cache.create: line size must be a power of two";
  let lines = size_bytes / line_bytes in
  if lines = 0 || lines mod associativity <> 0 then
    invalid_arg "Cache.create: size/line/associativity mismatch";
  let sets = lines / associativity in
  if not (is_power_of_two sets) then
    invalid_arg "Cache.create: set count must be a power of two";
  {
    size_bytes;
    line_bytes;
    associativity;
    sets;
    tags = Array.make lines (-1);
    stamps = Array.make lines 0;
    clock = 0;
    accesses = 0;
    hits = 0;
  }

let access t address =
  if address < 0 then invalid_arg "Cache.access: negative address";
  t.accesses <- t.accesses + 1;
  t.clock <- t.clock + 1;
  let line = address / t.line_bytes in
  let set = line mod t.sets in
  let tag = line / t.sets in
  let base = set * t.associativity in
  (* Look for the tag; remember the LRU way for a potential fill. *)
  let hit_way = ref (-1) in
  let lru_way = ref base in
  for way = base to base + t.associativity - 1 do
    if t.tags.(way) = tag then hit_way := way;
    if t.stamps.(way) < t.stamps.(!lru_way) then lru_way := way
  done;
  if !hit_way >= 0 then begin
    t.hits <- t.hits + 1;
    t.stamps.(!hit_way) <- t.clock;
    true
  end
  else begin
    t.tags.(!lru_way) <- tag;
    t.stamps.(!lru_way) <- t.clock;
    false
  end

let accesses t = t.accesses
let hits t = t.hits
let misses t = t.accesses - t.hits

let hit_rate t =
  if t.accesses = 0 then 0.0 else float_of_int t.hits /. float_of_int t.accesses

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0;
  t.clock <- 0;
  t.accesses <- 0;
  t.hits <- 0

let size_bytes t = t.size_bytes
let line_bytes t = t.line_bytes
let associativity t = t.associativity
