open Harmony_param
open Harmony_objective

type hierarchy = {
  l1 : Cache.t;
  l2 : Cache.t;
  l1_miss_cycles : int;
  l2_miss_cycles : int;
}

let default_hierarchy () =
  {
    l1 = Cache.create ~size_bytes:8192 ~line_bytes:64 ~associativity:2;
    l2 = Cache.create ~size_bytes:65536 ~line_bytes:64 ~associativity:4;
    l1_miss_cycles = 10;
    l2_miss_cycles = 60;
  }

type result = {
  cycles : float;
  l1_hit_rate : float;
  l2_hit_rate : float;
  flops : int;
}

let element_bytes = 8

let run ?hierarchy ~m ~n ~k ~mb ~nb ~kb () =
  if m <= 0 || n <= 0 || k <= 0 then invalid_arg "Matmul.run: non-positive dims";
  let h = match hierarchy with Some h -> h | None -> default_hierarchy () in
  Cache.reset h.l1;
  Cache.reset h.l2;
  let mb = max 1 (min mb m) and nb = max 1 (min nb n) and kb = max 1 (min kb k) in
  (* Array base addresses, padded apart. *)
  let a_base = 0 in
  let b_base = a_base + (m * k * element_bytes) in
  let c_base = b_base + (k * n * element_bytes) in
  let cycles = ref 0.0 in
  let touch address =
    if Cache.access h.l1 address then cycles := !cycles +. 1.0
    else if Cache.access h.l2 address then
      cycles := !cycles +. 1.0 +. float_of_int h.l1_miss_cycles
    else
      cycles :=
        !cycles +. 1.0 +. float_of_int h.l1_miss_cycles
        +. float_of_int h.l2_miss_cycles
  in
  let a i j = touch (a_base + (((i * k) + j) * element_bytes)) in
  let b i j = touch (b_base + (((i * n) + j) * element_bytes)) in
  let c i j = touch (c_base + (((i * n) + j) * element_bytes)) in
  (* Blocked i-k-j loop nest: for each (ib, kb, jb) block triple, the
     inner loops touch C[i][j], A[i][p], B[p][j]. *)
  let i0 = ref 0 in
  while !i0 < m do
    let imax = min m (!i0 + mb) in
    let p0 = ref 0 in
    while !p0 < k do
      let pmax = min k (!p0 + kb) in
      let j0 = ref 0 in
      while !j0 < n do
        let jmax = min n (!j0 + nb) in
        for i = !i0 to imax - 1 do
          for p = !p0 to pmax - 1 do
            a i p;
            for j = !j0 to jmax - 1 do
              b p j;
              c i j
            done
          done
        done;
        j0 := jmax
      done;
      p0 := pmax
    done;
    i0 := imax
  done;
  let l1_missed = Cache.misses h.l1 in
  {
    cycles = !cycles;
    l1_hit_rate = Cache.hit_rate h.l1;
    l2_hit_rate =
      (if l1_missed = 0 then 0.0
       else float_of_int (Cache.hits h.l2) /. float_of_int l1_missed);
    flops = 2 * m * n * k;
  }

let space ~max_block =
  Space.create
    [
      Param.int_range ~name:"mb" ~lo:4 ~hi:max_block ~step:4 ~default:8 ();
      Param.int_range ~name:"nb" ~lo:4 ~hi:max_block ~step:4 ~default:8 ();
      Param.int_range ~name:"kb" ~lo:4 ~hi:max_block ~step:4 ~default:8 ();
    ]

let objective ?hierarchy ~m ~n ~k () =
  let max_block = max 4 (max m (max n k)) in
  let h = match hierarchy with Some h -> h | None -> default_hierarchy () in
  Objective.create ~space:(space ~max_block)
    ~direction:Objective.Lower_is_better (fun conf ->
      let r =
        run ~hierarchy:h ~m ~n ~k ~mb:(int_of_float conf.(0))
          ~nb:(int_of_float conf.(1)) ~kb:(int_of_float conf.(2)) ()
      in
      r.cycles)
