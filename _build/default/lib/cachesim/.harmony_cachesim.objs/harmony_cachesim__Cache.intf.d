lib/cachesim/cache.mli:
