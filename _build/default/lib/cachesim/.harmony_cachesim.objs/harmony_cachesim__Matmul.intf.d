lib/cachesim/matmul.mli: Cache Harmony_objective Harmony_param
