lib/cachesim/matmul.ml: Array Cache Harmony_objective Harmony_param Objective Param Space
