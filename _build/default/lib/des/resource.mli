(** A capacity-limited server pool with a bounded FIFO accept queue.

    Models one tier of the web-service pipeline: [capacity] parallel
    servers (worker processes / connections), and a waiting queue of
    at most [queue_limit] requests (the accept/backlog queue).  A
    request that arrives when all servers are busy and the queue is
    full is rejected — the paper's accept-count parameters control
    exactly this. *)

type t

val create : capacity:int -> ?queue_limit:int -> unit -> t
(** [queue_limit] defaults to unbounded.  Requires [capacity >= 1] and
    [queue_limit >= 0]. *)

val capacity : t -> int
val busy : t -> int
val queued : t -> int

val submit :
  Sim.t ->
  t ->
  service_time:float ->
  on_complete:(Sim.t -> unit) ->
  on_reject:(Sim.t -> unit) ->
  unit
(** Submit a request.  Either it starts service now, waits in FIFO
    order, or — if the queue is full — [on_reject] fires
    immediately.  [on_complete] fires when service finishes.
    [service_time] is fixed at submission (sampled by the caller). *)

val utilization_time : t -> float
(** Integral of (busy servers) over simulation time so far: divide by
    elapsed time and capacity for average utilization. *)

val completed : t -> int
val rejected : t -> int
