lib/des/resource.ml: Queue Sim
