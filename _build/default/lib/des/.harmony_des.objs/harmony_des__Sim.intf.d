lib/des/sim.mli:
