lib/des/heap.mli:
