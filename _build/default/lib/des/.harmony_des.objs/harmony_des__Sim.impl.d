lib/des/sim.ml: Float Heap
