lib/des/resource.mli: Sim
