(** Discrete-event simulation engine.

    A simulation is an event loop over a time-ordered heap of
    callbacks.  Handlers receive the engine so they can read the clock
    and schedule further events.  Equal-time events fire in schedule
    order (deterministic). *)

type t

val create : unit -> t

val now : t -> float
(** Current simulation time (starts at 0). *)

val schedule : t -> delay:float -> (t -> unit) -> unit
(** Schedule a handler [delay] time units from now.
    @raise Invalid_argument on a negative delay. *)

val schedule_at : t -> time:float -> (t -> unit) -> unit
(** Schedule at an absolute time, which must not be in the past. *)

val pending : t -> int
(** Number of scheduled events not yet fired. *)

val run : ?until:float -> t -> unit
(** Fire events in time order until the queue empties, or — when
    [until] is given — until the clock would pass it (the clock is
    then left at [until]; remaining events stay queued). *)

val step : t -> bool
(** Fire exactly one event; [false] when the queue is empty. *)
