(** A binary min-heap keyed by float priority with FIFO tie-breaking.

    The event queue of the discrete-event simulator: events at equal
    times fire in insertion order, which keeps simulations
    deterministic. *)

type 'a t

val create : unit -> 'a t
val size : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> float -> 'a -> unit

val peek : 'a t -> (float * 'a) option
(** Smallest key (earliest inserted among equals), without removing. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the smallest key. *)

val clear : 'a t -> unit
