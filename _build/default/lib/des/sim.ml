type t = { mutable clock : float; events : handler Heap.t }
and handler = t -> unit

let create () = { clock = 0.0; events = Heap.create () }
let now t = t.clock

let schedule_at t ~time handler =
  if time < t.clock then invalid_arg "Sim.schedule_at: time in the past";
  Heap.push t.events time handler

let schedule t ~delay handler =
  if delay < 0.0 then invalid_arg "Sim.schedule: negative delay";
  Heap.push t.events (t.clock +. delay) handler

let pending t = Heap.size t.events

let step t =
  match Heap.pop t.events with
  | None -> false
  | Some (time, handler) ->
      t.clock <- time;
      handler t;
      true

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some horizon ->
      let continue = ref true in
      while !continue do
        match Heap.peek t.events with
        | Some (time, _) when time <= horizon -> ignore (step t)
        | Some _ | None ->
            t.clock <- Float.max t.clock horizon;
            continue := false
      done
