(** The cluster-based web service's tunable parameters.

    The ten parameters of the paper's Figure 8, spanning all three
    tiers: the Squid proxy (cache memory, object-size window), the
    Tomcat HTTP/application server (connector processes, accept
    queues, transfer buffer) and the MySQL database (connection pool,
    delayed-insert queue, network buffer). *)

open Harmony_param

type t = {
  ajp_accept_count : int;       (** app-tier accept/backlog queue slots *)
  ajp_max_processors : int;     (** app-tier worker processes *)
  http_buffer_kb : int;         (** HTTP transfer buffer size *)
  http_accept_count : int;      (** proxy-tier accept queue slots *)
  mysql_max_connections : int;  (** database connection pool size *)
  mysql_delayed_queue : int;    (** delayed-insert queue rows *)
  mysql_net_buffer_kb : int;    (** database network buffer size *)
  proxy_max_object_kb : int;    (** largest object the cache stores *)
  proxy_min_object_kb : int;    (** smallest object the cache stores *)
  proxy_cache_mem_mb : int;     (** proxy cache memory *)
}

val space : Space.t
(** The ten-dimensional search space, in the field order above. *)

val param_names : string array

val default : t

val of_config : Space.config -> t
(** Interpret a configuration vector (snapped to the grid first).
    @raise Invalid_argument on arity mismatch. *)

val to_config : t -> Space.config
