lib/webservice/effects.ml: Array Float Tpcw Wsconfig
