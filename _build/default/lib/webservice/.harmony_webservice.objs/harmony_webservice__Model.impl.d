lib/webservice/model.ml: Array Effects Float Harmony_objective Objective Wsconfig
