lib/webservice/simulation.mli: Harmony_objective Tpcw Wsconfig
