lib/webservice/effects.mli: Tpcw Wsconfig
