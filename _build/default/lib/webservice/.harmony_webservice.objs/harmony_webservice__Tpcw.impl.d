lib/webservice/tpcw.ml: Array Harmony_numerics
