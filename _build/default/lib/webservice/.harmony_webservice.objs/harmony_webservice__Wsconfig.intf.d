lib/webservice/wsconfig.mli: Harmony_param Space
