lib/webservice/model.mli: Harmony_objective Tpcw Wsconfig
