lib/webservice/simulation.ml: Array Effects Float Harmony_des Harmony_numerics Harmony_objective Objective Tpcw Wsconfig
