lib/webservice/wsconfig.ml: Array Harmony_param Param Space
