lib/webservice/tpcw.mli: Harmony_numerics
