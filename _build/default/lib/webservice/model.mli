(** Closed-queueing-network throughput model of the 3-tier service.

    A fast, deterministic stand-in for running the benchmark: N
    emulated browsers with exponential think time circulate through
    proxy, application, and database stations.  Solved by Schweitzer
    approximate mean value analysis with the Seidmann multi-server
    transformation, plus a retry penalty when the application tier's
    accept queue overflows.

    The model evaluates one configuration in microseconds, which makes
    exhaustive-ish sweeps (Figure 4) and long tuning traces cheap; the
    discrete-event {!Simulation} validates its shape. *)

type options = {
  clients : int;        (** emulated browsers (default 120) *)
  think_ms : float;     (** mean think time (default 1000 ms) *)
}

val default_options : options

type result = {
  wips : float;             (** web interactions per second *)
  cache_hit : float;        (** mix-weighted cache hit probability *)
  utilization : float * float * float;  (** proxy, app, db *)
  bottleneck : string;      (** name of the most utilized station *)
  reject_fraction : float;  (** estimated accept-queue overflow *)
}

val evaluate : ?options:options -> Wsconfig.t -> mix:Tpcw.mix -> result

val wips : ?options:options -> Wsconfig.t -> mix:Tpcw.mix -> float

val objective : ?options:options -> mix:Tpcw.mix -> unit -> Harmony_objective.Objective.t
(** Higher-is-better WIPS over {!Wsconfig.space}. *)
