open Harmony_objective

type options = { clients : int; think_ms : float }

let default_options = { clients = 120; think_ms = 1000.0 }

type result = {
  wips : float;
  cache_hit : float;
  utilization : float * float * float;
  bottleneck : string;
  reject_fraction : float;
}

type station = { name : string; demand_ms : float; servers : int }

(* Schweitzer AMVA with Seidmann's multi-server approximation: a
   c-server station with demand D becomes a queueing station with
   demand D/c plus a pure delay of D*(c-1)/c. *)
let amva ~clients ~think_ms stations =
  let n = float_of_int clients in
  let k = Array.length stations in
  let q_demand = Array.map (fun s -> s.demand_ms /. float_of_int s.servers) stations in
  let fixed_delay =
    Array.fold_left
      (fun acc s ->
        acc +. (s.demand_ms *. float_of_int (s.servers - 1) /. float_of_int s.servers))
      0.0 stations
  in
  let q = Array.make k (n /. float_of_int (max 1 k)) in
  let x = ref 0.0 in
  for _ = 1 to 200 do
    let r = Array.mapi (fun i d -> d *. (1.0 +. (q.(i) *. (n -. 1.0) /. n))) q_demand in
    let total = Array.fold_left ( +. ) 0.0 r in
    x := n /. (think_ms +. fixed_delay +. total);
    Array.iteri (fun i ri -> q.(i) <- !x *. ri) r
  done;
  (!x, q)

(* M/M/c/K blocking probability (Erlang loss with waiting room):
   computed from the birth-death chain with a running normalization so
   large K never overflows. [offered] is in Erlangs (arrival rate x
   mean service time). *)
let mmck_blocking ~servers ~queue ~offered =
  if offered <= 0.0 then 0.0
  else begin
    let k = servers + queue in
    let c = float_of_int servers in
    (* p_n relative to p_0, renormalized on the fly. *)
    let rel = ref 1.0 in
    let total = ref 1.0 in
    for n = 0 to k - 1 do
      let rate = offered /. Float.min c (float_of_int (n + 1)) in
      rel := !rel *. rate;
      (* Guard against runaway growth in deeply saturated systems. *)
      if !rel > 1e12 then begin
        total := !total /. !rel;
        rel := 1.0
      end;
      total := !total +. !rel
    done;
    !rel /. !total
  end

let evaluate ?(options = default_options) config ~mix =
  if options.clients < 1 then invalid_arg "Model.evaluate: clients < 1";
  let fx = Effects.derive config ~mix in
  let d_proxy = Effects.mean_proxy_ms fx in
  let d_app = Effects.mean_app_ms fx in
  let d_db = Effects.mean_db_ms fx in
  let stations =
    [|
      { name = "proxy"; demand_ms = Float.max 1e-6 d_proxy;
        servers = Effects.proxy_servers fx };
      { name = "app"; demand_ms = Float.max 1e-6 d_app;
        servers = Effects.app_servers fx };
      { name = "db"; demand_ms = Float.max 1e-6 d_db;
        servers = Effects.db_servers fx };
    |]
  in
  let x, _q = amva ~clients:options.clients ~think_ms:options.think_ms stations in
  (* Accept-queue overflow at the proxy and app tiers: requests that
     find the backlog full are rejected and retried after a client
     backoff, costing throughput. *)
  let blocking station queue_limit =
    mmck_blocking ~servers:station.servers ~queue:queue_limit
      ~offered:(x *. station.demand_ms)
  in
  let over_proxy = blocking stations.(0) (Effects.proxy_queue_limit fx) in
  let over_app = blocking stations.(1) (Effects.app_queue_limit fx) in
  let reject_fraction = Float.min 0.9 (over_proxy +. over_app) in
  let x = x *. (1.0 -. (0.5 *. reject_fraction)) in
  let util i =
    Float.min 1.0 (x *. stations.(i).demand_ms /. float_of_int stations.(i).servers)
  in
  let u = (util 0, util 1, util 2) in
  let bottleneck =
    let u0, u1, u2 = u in
    if u1 >= u0 && u1 >= u2 then "app" else if u2 >= u0 then "db" else "proxy"
  in
  {
    wips = x *. 1000.0;
    cache_hit = Effects.mean_cache_hit fx;
    utilization = u;
    bottleneck;
    reject_fraction;
  }

let wips ?options config ~mix = (evaluate ?options config ~mix).wips

let objective ?options ~mix () =
  Objective.create ~space:Wsconfig.space ~direction:Objective.Higher_is_better
    (fun c -> wips ?options (Wsconfig.of_config c) ~mix)
