(** How the ten tunables shape tier behaviour.

    This module is the shared physics of the analytic model and the
    discrete-event simulator: given a configuration and a workload
    mix, it derives cache hit probabilities, per-interaction service
    times (with thrashing and contention inflation), pool sizes, and
    queue limits.  The formulas are synthetic but engineered to
    reproduce the qualitative structure the paper reports:

    - desirable configurations lie strictly inside the box (extreme
      values thrash or starve) — the premise of Section 4.1;
    - the MySQL network buffer and delayed-insert queue dominate under
      the ordering mix, the proxy cache memory under the shopping mix
      (Figure 8's discussion);
    - accept queues trade rejection rate against queueing delay. *)

type t

val derive : Wsconfig.t -> mix:Tpcw.mix -> t

val node_ram_mb : float
(** Memory per node (1 GByte, Table 3); thrashing starts as demand
    approaches it. *)

val cache_hit_probability : t -> Tpcw.interaction -> float
(** Probability that the proxy serves the interaction from cache;
    [0.] for non-cacheable interactions. *)

val proxy_hit_ms : t -> Tpcw.interaction -> float
(** Proxy service time when serving from cache. *)

val proxy_forward_ms : t -> Tpcw.interaction -> float
(** Proxy work to forward a miss and relay the response. *)

val app_service_ms : t -> Tpcw.interaction -> float
(** Application-tier service time: CPU demand plus buffered transfer
    cost, inflated by memory thrashing. *)

val db_service_ms : t -> Tpcw.interaction -> float
(** Database service time: read demand, delayed-queue-discounted
    write demand, net-buffer transfer cost, inflated by memory and
    lock contention. *)

val proxy_servers : t -> int
val proxy_queue_limit : t -> int
val app_servers : t -> int
val app_queue_limit : t -> int
val db_servers : t -> int
val db_queue_limit : t -> int

val mean_cache_hit : t -> float
(** Mix-weighted probability that a request is a cache hit. *)

val mean_proxy_ms : t -> float
val mean_app_ms : t -> float
val mean_db_ms : t -> float
(** Mix-weighted per-request expected demand at each tier (app/db
    weighted by miss probability) — the inputs of the analytic
    model. *)
