module Rng = Harmony_numerics.Rng

type interaction =
  | Home
  | New_products
  | Best_sellers
  | Product_detail
  | Search_request
  | Search_results
  | Shopping_cart
  | Customer_registration
  | Buy_request
  | Buy_confirm
  | Order_inquiry
  | Order_display
  | Admin_request
  | Admin_confirm

type category = Browse | Order

let all =
  [|
    Home; New_products; Best_sellers; Product_detail; Search_request;
    Search_results; Shopping_cart; Customer_registration; Buy_request;
    Buy_confirm; Order_inquiry; Order_display; Admin_request; Admin_confirm;
  |]

let name = function
  | Home -> "Home"
  | New_products -> "NewProducts"
  | Best_sellers -> "BestSellers"
  | Product_detail -> "ProductDetail"
  | Search_request -> "SearchRequest"
  | Search_results -> "SearchResults"
  | Shopping_cart -> "ShoppingCart"
  | Customer_registration -> "CustomerRegistration"
  | Buy_request -> "BuyRequest"
  | Buy_confirm -> "BuyConfirm"
  | Order_inquiry -> "OrderInquiry"
  | Order_display -> "OrderDisplay"
  | Admin_request -> "AdminRequest"
  | Admin_confirm -> "AdminConfirm"

let category = function
  | Home | New_products | Best_sellers | Product_detail | Search_request
  | Search_results ->
      Browse
  | Shopping_cart | Customer_registration | Buy_request | Buy_confirm
  | Order_inquiry | Order_display | Admin_request | Admin_confirm ->
      Order

type mix = { label : string; weights : (interaction * float) array }

let normalize_weights weights =
  let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0.0 weights in
  if total <= 0.0 then invalid_arg "Tpcw: non-positive mix total";
  Array.map (fun (i, w) -> (i, w /. total)) weights

let make_mix label weights = { label; weights = normalize_weights weights }

(* Interaction percentages follow the TPC-W specification's three
   standard mixes (WIPSb / WIPS / WIPSo). *)
let browsing =
  make_mix "browsing"
    [|
      (Home, 29.00); (New_products, 11.00); (Best_sellers, 11.00);
      (Product_detail, 21.00); (Search_request, 12.00); (Search_results, 11.00);
      (Shopping_cart, 2.00); (Customer_registration, 0.82); (Buy_request, 0.75);
      (Buy_confirm, 0.69); (Order_inquiry, 0.30); (Order_display, 0.25);
      (Admin_request, 0.10); (Admin_confirm, 0.09);
    |]

let shopping =
  make_mix "shopping"
    [|
      (Home, 16.00); (New_products, 5.00); (Best_sellers, 5.00);
      (Product_detail, 17.00); (Search_request, 20.00); (Search_results, 17.00);
      (Shopping_cart, 11.60); (Customer_registration, 3.00); (Buy_request, 2.60);
      (Buy_confirm, 1.20); (Order_inquiry, 0.75); (Order_display, 0.66);
      (Admin_request, 0.10); (Admin_confirm, 0.09);
    |]

let ordering =
  make_mix "ordering"
    [|
      (Home, 9.12); (New_products, 0.46); (Best_sellers, 0.46);
      (Product_detail, 12.35); (Search_request, 14.53); (Search_results, 13.08);
      (Shopping_cart, 13.53); (Customer_registration, 12.86); (Buy_request, 12.73);
      (Buy_confirm, 10.18); (Order_inquiry, 0.25); (Order_display, 0.22);
      (Admin_request, 0.12); (Admin_confirm, 0.11);
    |]

let mix_of_label = function
  | "browsing" -> browsing
  | "shopping" -> shopping
  | "ordering" -> ordering
  | other -> invalid_arg ("Tpcw.mix_of_label: unknown mix " ^ other)

let weight mix interaction =
  let w = ref 0.0 in
  Array.iter (fun (i, v) -> if i = interaction then w := !w +. v) mix.weights;
  !w

let browse_fraction mix =
  Array.fold_left
    (fun acc (i, w) -> if category i = Browse then acc +. w else acc)
    0.0 mix.weights

let frequency_vector mix = Array.map (weight mix) all

let sample rng mix =
  let u = Rng.float rng 1.0 in
  let acc = ref 0.0 in
  let chosen = ref None in
  Array.iter
    (fun (i, w) ->
      acc := !acc +. w;
      if !chosen = None && u < !acc then chosen := Some i)
    mix.weights;
  match !chosen with Some i -> i | None -> fst mix.weights.(Array.length mix.weights - 1)

(* Draw within one category, proportional to the mix weights there. *)
let sample_in_category rng mix cat =
  let total =
    Array.fold_left
      (fun acc (i, w) -> if category i = cat then acc +. w else acc)
      0.0 mix.weights
  in
  if total <= 0.0 then sample rng mix
  else begin
    let u = Rng.float rng total in
    let acc = ref 0.0 in
    let chosen = ref None in
    Array.iter
      (fun (i, w) ->
        if category i = cat then begin
          acc := !acc +. w;
          if !chosen = None && u < !acc then chosen := Some i
        end)
      mix.weights;
    match !chosen with Some i -> i | None -> sample rng mix
  end

let sample_next rng mix ~persistence ~previous =
  if persistence < 0.0 || persistence >= 1.0 then
    invalid_arg "Tpcw.sample_next: persistence must be in [0, 1)";
  match previous with
  | Some prev when Rng.float rng 1.0 < persistence ->
      sample_in_category rng mix (category prev)
  | Some _ | None -> sample rng mix

let observed_frequencies rng mix ~samples =
  if samples <= 0 then invalid_arg "Tpcw.observed_frequencies: samples <= 0";
  let counts = Array.make (Array.length all) 0 in
  let index_of i =
    let rec find k = if all.(k) = i then k else find (k + 1) in
    find 0
  in
  for _ = 1 to samples do
    let i = sample rng mix in
    let k = index_of i in
    counts.(k) <- counts.(k) + 1
  done;
  Array.map (fun c -> float_of_int c /. float_of_int samples) counts

type demand = {
  app_ms : float;
  db_ms : float;
  db_write_ms : float;
  response_kb : float;
  db_result_kb : float;
  cacheable : bool;
}

(* Service demands in milliseconds on 2004-class hardware (dual Athlon
   1.67 GHz, MySQL 3.23 without a query cache): dynamic pages cost
   50-150 ms of application CPU and database queries 30-320 ms, with
   Best Sellers and Buy Confirm the notorious heavyweights. *)
let demand = function
  | Home ->
      { app_ms = 70.0; db_ms = 30.0; db_write_ms = 0.0; response_kb = 24.0;
        db_result_kb = 2.0; cacheable = true }
  | New_products ->
      { app_ms = 100.0; db_ms = 160.0; db_write_ms = 0.0; response_kb = 32.0;
        db_result_kb = 12.0; cacheable = true }
  | Best_sellers ->
      { app_ms = 100.0; db_ms = 320.0; db_write_ms = 0.0; response_kb = 32.0;
        db_result_kb = 14.0; cacheable = true }
  | Product_detail ->
      { app_ms = 80.0; db_ms = 60.0; db_write_ms = 0.0; response_kb = 40.0;
        db_result_kb = 4.0; cacheable = true }
  | Search_request ->
      { app_ms = 50.0; db_ms = 0.0; db_write_ms = 0.0; response_kb = 16.0;
        db_result_kb = 0.0; cacheable = true }
  | Search_results ->
      { app_ms = 130.0; db_ms = 220.0; db_write_ms = 0.0; response_kb = 36.0;
        db_result_kb = 16.0; cacheable = false }
  | Shopping_cart ->
      { app_ms = 110.0; db_ms = 100.0; db_write_ms = 40.0; response_kb = 28.0;
        db_result_kb = 6.0; cacheable = false }
  | Customer_registration ->
      { app_ms = 90.0; db_ms = 60.0; db_write_ms = 0.0; response_kb = 20.0;
        db_result_kb = 2.0; cacheable = false }
  | Buy_request ->
      { app_ms = 130.0; db_ms = 130.0; db_write_ms = 70.0; response_kb = 28.0;
        db_result_kb = 8.0; cacheable = false }
  | Buy_confirm ->
      { app_ms = 150.0; db_ms = 160.0; db_write_ms = 160.0; response_kb = 24.0;
        db_result_kb = 10.0; cacheable = false }
  | Order_inquiry ->
      { app_ms = 50.0; db_ms = 30.0; db_write_ms = 0.0; response_kb = 16.0;
        db_result_kb = 2.0; cacheable = false }
  | Order_display ->
      { app_ms = 90.0; db_ms = 130.0; db_write_ms = 0.0; response_kb = 28.0;
        db_result_kb = 10.0; cacheable = false }
  | Admin_request ->
      { app_ms = 70.0; db_ms = 60.0; db_write_ms = 0.0; response_kb = 20.0;
        db_result_kb = 4.0; cacheable = false }
  | Admin_confirm ->
      { app_ms = 110.0; db_ms = 130.0; db_write_ms = 110.0; response_kb = 20.0;
        db_result_kb = 6.0; cacheable = false }

let mean_demand mix =
  let acc =
    Array.fold_left
      (fun acc (i, w) ->
        let d = demand i in
        {
          app_ms = acc.app_ms +. (w *. d.app_ms);
          db_ms = acc.db_ms +. (w *. d.db_ms);
          db_write_ms = acc.db_write_ms +. (w *. d.db_write_ms);
          response_kb = acc.response_kb +. (w *. d.response_kb);
          db_result_kb = acc.db_result_kb +. (w *. d.db_result_kb);
          cacheable = acc.cacheable;
        })
      { app_ms = 0.0; db_ms = 0.0; db_write_ms = 0.0; response_kb = 0.0;
        db_result_kb = 0.0; cacheable = false }
      mix.weights
  in
  let cacheable_weight =
    Array.fold_left
      (fun acc (i, w) -> if (demand i).cacheable then acc +. w else acc)
      0.0 mix.weights
  in
  { acc with cacheable = cacheable_weight > 0.5 }

let cacheable_fraction mix =
  Array.fold_left
    (fun acc (i, w) -> if (demand i).cacheable then acc +. w else acc)
    0.0 mix.weights

let write_fraction mix =
  Array.fold_left
    (fun acc (i, w) -> if (demand i).db_write_ms > 0.0 then acc +. w else acc)
    0.0 mix.weights
