(** The TPC-W transactional web benchmark workload (Appendix A of the
    paper): 14 web interactions, classified as Browse or Order, with
    the three standard mixes.  The primary performance metric is WIPS
    (web interactions per second); WIPSb and WIPSo are the browsing-
    and ordering-interval variants. *)

type interaction =
  | Home
  | New_products
  | Best_sellers
  | Product_detail
  | Search_request
  | Search_results
  | Shopping_cart
  | Customer_registration
  | Buy_request
  | Buy_confirm
  | Order_inquiry
  | Order_display
  | Admin_request
  | Admin_confirm

type category = Browse | Order

val all : interaction array
(** The 14 interactions, in specification order. *)

val name : interaction -> string
val category : interaction -> category

(** A workload mix assigns a relative weight to each interaction. *)
type mix = { label : string; weights : (interaction * float) array }

val browsing : mix
(** ~95% browse / 5% order. *)

val shopping : mix
(** ~80% browse / 20% order; the mix behind the primary WIPS metric. *)

val ordering : mix
(** ~50% browse / 50% order. *)

val mix_of_label : string -> mix
(** Recognizes "browsing", "shopping", "ordering".
    @raise Invalid_argument otherwise. *)

val weight : mix -> interaction -> float
(** Normalized weight (weights of a mix sum to 1). *)

val browse_fraction : mix -> float
(** Total weight of Browse-category interactions. *)

val frequency_vector : mix -> float array
(** The 14 normalized weights in {!all} order — the workload
    characterization the paper's data analyzer uses ("frequency
    distribution for web interactions"). *)

val sample : Harmony_numerics.Rng.t -> mix -> interaction
(** Draw an interaction according to the mix weights
    (independently of history). *)

val sample_next :
  Harmony_numerics.Rng.t -> mix -> persistence:float ->
  previous:interaction option -> interaction
(** Session-aware sampling: with probability [persistence] the next
    interaction stays in the previous one's category (Browse/Order),
    drawn proportionally to the mix weights within that category;
    otherwise (and when [previous] is [None]) it is drawn from the
    full mix.  By construction the stationary distribution equals the
    mix weights exactly, so the mix's WIPS semantics are preserved
    while requests arrive in realistic category bursts.
    Requires [0 <= persistence < 1]. *)

val observed_frequencies :
  Harmony_numerics.Rng.t -> mix -> samples:int -> float array
(** Empirical frequency vector from [samples] draws: what the data
    analyzer sees when it "spends a small amount of time observing
    requests". *)

(** Per-interaction resource demands, used by both the analytic model
    and the discrete-event simulator. *)
type demand = {
  app_ms : float;       (** application-server CPU time *)
  db_ms : float;        (** database time (reads) *)
  db_write_ms : float;  (** extra database time for writes, 0 if read-only *)
  response_kb : float;  (** response size through the HTTP buffer *)
  db_result_kb : float; (** result set through the MySQL net buffer *)
  cacheable : bool;     (** can the proxy cache serve it? *)
}

val demand : interaction -> demand

val mean_demand : mix -> demand
(** Mix-weighted average demand ([cacheable] is true when the weighted
    cacheable fraction exceeds one half; use {!cacheable_fraction} for
    the exact value). *)

val cacheable_fraction : mix -> float
val write_fraction : mix -> float
(** Weight of interactions that perform database writes. *)
