open Harmony_param

type t = {
  ajp_accept_count : int;
  ajp_max_processors : int;
  http_buffer_kb : int;
  http_accept_count : int;
  mysql_max_connections : int;
  mysql_delayed_queue : int;
  mysql_net_buffer_kb : int;
  proxy_max_object_kb : int;
  proxy_min_object_kb : int;
  proxy_cache_mem_mb : int;
}

let param_names =
  [|
    "AJPAcceptCount"; "AJPMaxProcessors"; "HTTPBufferSize"; "HTTPAcceptCount";
    "MYSQLMaxConnections"; "MYSQLDelayedQueue"; "MYSQLNetBuffer";
    "PROXYMaxObjectInMemory"; "PROXYMinObject"; "PROXYCacheMem";
  |]

let space =
  Space.create
    [
      Param.int_range ~name:"AJPAcceptCount" ~lo:8 ~hi:512 ~step:8 ~default:64 ();
      Param.int_range ~name:"AJPMaxProcessors" ~lo:2 ~hi:128 ~step:2 ~default:24 ();
      Param.int_range ~name:"HTTPBufferSize" ~lo:1 ~hi:128 ~step:1 ~default:8 ();
      Param.int_range ~name:"HTTPAcceptCount" ~lo:8 ~hi:512 ~step:8 ~default:64 ();
      Param.int_range ~name:"MYSQLMaxConnections" ~lo:2 ~hi:128 ~step:2 ~default:32 ();
      Param.int_range ~name:"MYSQLDelayedQueue" ~lo:100 ~hi:10000 ~step:100
        ~default:1000 ();
      Param.int_range ~name:"MYSQLNetBuffer" ~lo:1 ~hi:128 ~step:1 ~default:8 ();
      Param.int_range ~name:"PROXYMaxObjectInMemory" ~lo:8 ~hi:1024 ~step:8
        ~default:64 ();
      Param.int_range ~name:"PROXYMinObject" ~lo:0 ~hi:64 ~step:1 ~default:0 ();
      Param.int_range ~name:"PROXYCacheMem" ~lo:8 ~hi:512 ~step:8 ~default:64 ();
    ]

let default =
  {
    ajp_accept_count = 64;
    ajp_max_processors = 24;
    http_buffer_kb = 8;
    http_accept_count = 64;
    mysql_max_connections = 32;
    mysql_delayed_queue = 1000;
    mysql_net_buffer_kb = 8;
    proxy_max_object_kb = 64;
    proxy_min_object_kb = 0;
    proxy_cache_mem_mb = 64;
  }

let of_config c =
  let c = Space.snap space c in
  let at i = int_of_float c.(i) in
  {
    ajp_accept_count = at 0;
    ajp_max_processors = at 1;
    http_buffer_kb = at 2;
    http_accept_count = at 3;
    mysql_max_connections = at 4;
    mysql_delayed_queue = at 5;
    mysql_net_buffer_kb = at 6;
    proxy_max_object_kb = at 7;
    proxy_min_object_kb = at 8;
    proxy_cache_mem_mb = at 9;
  }

let to_config t =
  [|
    float_of_int t.ajp_accept_count;
    float_of_int t.ajp_max_processors;
    float_of_int t.http_buffer_kb;
    float_of_int t.http_accept_count;
    float_of_int t.mysql_max_connections;
    float_of_int t.mysql_delayed_queue;
    float_of_int t.mysql_net_buffer_kb;
    float_of_int t.proxy_max_object_kb;
    float_of_int t.proxy_min_object_kb;
    float_of_int t.proxy_cache_mem_mb;
  |]
