open Harmony_param
open Harmony_objective

type direction = Minimize | Maximize

type message =
  | Register of { spec : string; direction : direction }
  | Query
  | Report of float

type reply =
  | Assign of (string * int) list
  | Done of { best : (string * int) list; performance : float }
  | Rejected of string

type session = {
  rsl : Rsl.t;
  names : string list;
  controller : Controller.t;
  mutable outstanding : (string * int) list option;
      (* assignment awaiting its performance report *)
}

type t = { options : Simplex.options; mutable session : session option }

let create ?(options = Simplex.default_options) () = { options; session = None }

let spec t = Option.map (fun s -> s.rsl) t.session

let assignment_of_config session config =
  (* Proposals come from the box space; project into the restricted
     region so the client only ever runs meaningful configurations.
     The controller is told the performance of its own proposal — the
     projection distance is at most one conditional-range clamp, the
     same approximation Rsl.repair-based tuning makes everywhere. *)
  let feasible = Rsl.repair session.rsl config in
  List.mapi (fun i name -> (name, int_of_float feasible.(i))) session.names

(* Advance the controller to its next request and turn it into a
   reply, remembering the outstanding assignment. *)
let next_reply session =
  match Controller.pending session.controller with
  | `Measure config ->
      let assignment = assignment_of_config session config in
      session.outstanding <- Some assignment;
      Assign assignment
  | `Done outcome ->
      session.outstanding <- None;
      Done
        {
          best = assignment_of_config session outcome.Simplex.best_config;
          performance = outcome.Simplex.best_performance;
        }

let handle t message =
  match (message, t.session) with
  | Register { spec; direction }, _ -> (
      match Rsl.parse spec with
      | exception Rsl.Parse_error msg -> Rejected ("bad specification: " ^ msg)
      | rsl -> (
          match Rsl.to_space rsl with
          | exception Invalid_argument msg -> Rejected msg
          | space ->
              let direction =
                match direction with
                | Minimize -> Objective.Lower_is_better
                | Maximize -> Objective.Higher_is_better
              in
              let controller =
                Controller.create ~options:t.options ~space ~direction ()
              in
              let session =
                { rsl; names = Rsl.names rsl; controller; outstanding = None }
              in
              t.session <- Some session;
              next_reply session))
  | Query, None -> Rejected "no specification registered"
  | Query, Some session -> (
      (* Idempotent: repeat the outstanding assignment if any. *)
      match session.outstanding with
      | Some assignment -> Assign assignment
      | None -> next_reply session)
  | Report _, None -> Rejected "no specification registered"
  | Report performance, Some session -> (
      match session.outstanding with
      | None -> Rejected "no assignment outstanding"
      | Some _ ->
          session.outstanding <- None;
          (match Controller.pending session.controller with
          | `Measure _ -> Controller.report session.controller performance
          | `Done _ -> ());
          next_reply session)

(* ------------------------------------------------------------------ *)
(* Line codec                                                          *)

let parse_message text =
  let text = String.trim text in
  match String.index_opt text '\n' with
  | Some i -> (
      let first = String.trim (String.sub text 0 i) in
      let rest = String.sub text (i + 1) (String.length text - i - 1) in
      match String.split_on_char ' ' first with
      | [ "register"; "min" ] -> Ok (Register { spec = rest; direction = Minimize })
      | [ "register"; "max" ] -> Ok (Register { spec = rest; direction = Maximize })
      | _ -> Error ("unknown multi-line command: " ^ first))
  | None -> (
      match String.split_on_char ' ' text with
      | [ "query" ] -> Ok Query
      | [ "report"; value ] -> (
          match float_of_string_opt value with
          | Some v -> Ok (Report v)
          | None -> Error ("bad performance value: " ^ value))
      | _ -> Error ("unknown command: " ^ text))

let reply_to_string = function
  | Assign assignment ->
      "assign "
      ^ String.concat " "
          (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) assignment)
  | Done { best; performance } ->
      Printf.sprintf "done %s perf=%g"
        (String.concat " " (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) best))
        performance
  | Rejected msg -> "error " ^ msg
