lib/core/history.mli: Harmony_numerics Harmony_objective Harmony_param Objective Space Tuner
