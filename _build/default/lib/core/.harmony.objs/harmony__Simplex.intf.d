lib/core/simplex.mli: Harmony_objective Harmony_param Objective Space
