lib/core/sensitivity.ml: Array Float Format Fun Harmony_objective Harmony_param List Objective Param Space
