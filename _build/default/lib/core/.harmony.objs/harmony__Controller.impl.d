lib/core/controller.ml: Array Effect Fun Harmony_objective Harmony_param Objective Simplex Space
