lib/core/factorial.mli: Harmony_objective Objective
