lib/core/baselines.ml: Array Float Harmony_numerics Harmony_objective Harmony_param List Objective Param Printf Recorder Seq Space
