lib/core/session.ml: Analyzer Fun Harmony_objective Harmony_param History List Objective Option Sensitivity Space Subspace Tuner
