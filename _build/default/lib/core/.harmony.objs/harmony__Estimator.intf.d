lib/core/estimator.mli: Harmony_param Space
