lib/core/history.ml: Array Buffer Fun Harmony_ml Harmony_numerics Harmony_objective Harmony_param Hashtbl List Objective Printf Recorder Seq Space String Sys Tuner
