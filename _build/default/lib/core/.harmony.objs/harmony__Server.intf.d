lib/core/server.mli: Harmony_param Rsl Simplex
