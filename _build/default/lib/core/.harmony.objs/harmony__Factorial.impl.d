lib/core/factorial.ml: Array Float Harmony_objective Harmony_param List Objective Param Space
