lib/core/tuner.ml: Array Buffer Float Format Harmony_numerics Harmony_objective Harmony_param List Objective Option Param Printf Recorder Simplex Space
