lib/core/subspace.mli: Harmony_objective Harmony_param Objective Space
