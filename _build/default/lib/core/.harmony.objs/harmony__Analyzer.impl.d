lib/core/analyzer.ml: Array Estimator Float Harmony_numerics Harmony_objective Harmony_param History List Logs Objective Simplex Space Tuner
