lib/core/session.mli: Harmony_objective Harmony_param History Objective Sensitivity Space Tuner
