lib/core/controller.mli: Harmony_objective Harmony_param Objective Simplex Space
