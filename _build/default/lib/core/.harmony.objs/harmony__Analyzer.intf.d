lib/core/analyzer.mli: Harmony_objective History Objective Simplex Tuner
