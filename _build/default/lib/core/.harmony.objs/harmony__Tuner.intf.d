lib/core/tuner.mli: Format Harmony_objective Harmony_param Objective Recorder Simplex Space
