lib/core/baselines.mli: Harmony_numerics Harmony_objective Harmony_param Objective Recorder Space
