lib/core/subspace.ml: Array Harmony_objective Harmony_param List Objective Space
