lib/core/simplex.ml: Array Float Harmony_numerics Harmony_objective Harmony_param List Logs Objective Param Space
