lib/core/estimator.ml: Array Harmony_numerics Harmony_param List Space
