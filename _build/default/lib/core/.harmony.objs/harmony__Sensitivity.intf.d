lib/core/sensitivity.mli: Format Harmony_objective Objective
