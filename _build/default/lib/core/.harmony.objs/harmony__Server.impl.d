lib/core/server.ml: Array Controller Harmony_objective Harmony_param List Objective Option Printf Rsl Simplex String
