(** Performance estimation by triangulation (Section 4.3).

    When historical data does not contain the exact configurations the
    tuning server wants to train with, their performance is estimated:
    pick "appropriate" known vertices, lift them into an (N+1)-D space
    whose extra axis is performance, fit the hyperplane [[C_i 1] x =
    P_i] (exact solve when square, least squares otherwise), and
    interpolate/extrapolate the target configuration.

    Vertex selection follows the paper's footnote: the current
    implementation uses the vertices {e closest} to the target;
    a recency-based alternative ([Latest]) is provided for changing
    environments and ablated in the benches. *)

open Harmony_param

type vertex_choice =
  | Nearest  (** the k points closest to the target in normalized space *)
  | Latest   (** the k most recent points (list order = age, last = newest) *)

val estimate :
  ?k:int ->
  ?choice:vertex_choice ->
  space:Space.t ->
  points:(Space.config * float) list ->
  target:Space.config ->
  unit ->
  float
(** [estimate ~space ~points ~target ()] predicts the performance at
    [target].  [k] defaults to [dims + 1] (a full simplex).
    Coordinates are normalized before fitting so parameters with wide
    ranges do not dominate.
    @raise Invalid_argument when [points] is empty. *)

val fill :
  ?k:int ->
  ?choice:vertex_choice ->
  space:Space.t ->
  points:(Space.config * float) list ->
  targets:Space.config list ->
  unit ->
  (Space.config * float) list
(** Estimate several targets against the same historical data (the
    training-stage batch: every missing simplex vertex at once). *)
