(** Tuning a subset of parameters.

    "We let the system tune the n most sensitive parameters while
    leaving the rest of the parameters with their default values"
    (Section 5.2).  A projected objective exposes only the selected
    dimensions; evaluations embed them back into a full base
    configuration. *)

open Harmony_param
open Harmony_objective

type t

val project : Objective.t -> indices:int list -> ?base:Space.config -> unit -> t
(** [project obj ~indices ()] keeps the listed parameter indices
    (deduplicated, ascending); all other parameters are frozen at
    [base] (default: the space's defaults).
    @raise Invalid_argument on an empty or out-of-range index list. *)

val objective : t -> Objective.t
(** The reduced-dimensional objective. *)

val embed : t -> Space.config -> Space.config
(** Lift a reduced configuration to the full space. *)

val restrict : t -> Space.config -> Space.config
(** Drop the frozen coordinates of a full configuration. *)

val indices : t -> int list
