(** Factorial experiment designs.

    The prioritizing tool assumes parameter interactions are small;
    when that is not true, the paper points users to "full or
    fractional factorial experiment design" (Section 3, citing Jain
    and Plackett-Burman).  This module provides both: a two-level full
    factorial that also measures two-way interactions, and
    Plackett-Burman screening that estimates all main effects in a
    handful of runs. *)

open Harmony_objective

type effects = {
  names : string array;
  main : float array;
      (** main effect per parameter: mean response at its high level
          minus mean at its low level *)
  interactions : (int * int * float) array;
      (** two-way interaction effects (full factorial only; empty for
          Plackett-Burman) *)
  runs : int;  (** objective evaluations spent *)
}

val full : ?levels:float * float -> ?max_runs:int -> Objective.t -> effects
(** Two-level full factorial: evaluates all 2^n corner combinations of
    each parameter's low/high level (given as range fractions,
    default [(0.0, 1.0)] — the extremes, as classic designs use).
    @raise Invalid_argument when [2^n] exceeds [max_runs]
    (default 4096), or levels are not within [0, 1] in order. *)

val plackett_burman : Objective.t -> effects
(** Plackett-Burman screening: main effects for up to 23 parameters
    from the smallest standard design (8, 12, 16, 20 or 24 runs) with
    at least [n + 1] rows.  Interaction estimates are not available
    (they alias onto main effects by design).
    @raise Invalid_argument for more than 23 parameters. *)

val ranked_main : effects -> (string * float) list
(** Parameters by decreasing absolute main effect. *)

val interaction_ratio : effects -> float
(** [max |interaction| / max |main|]: above ~0.5, the prioritizing
    tool's no-interaction assumption is doubtful and the full design
    should be preferred.  [0.] when no interactions were measured or
    all main effects are zero. *)
