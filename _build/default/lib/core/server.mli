(** The Active Harmony tuning server.

    The system to be tuned registers its tunable parameters with a
    resource-specification-language program (Appendix B), then
    alternates between asking for the next configuration and reporting
    the measured performance; the server runs the adaptation
    controller behind the scenes.  The line-based message codec makes
    wrapping the server in a socket loop trivial, and the in-process
    {!handle} entry point is what the tests and examples use.

    {v
      client -> server          server -> client
      -----------------         -----------------
      register max              assign B=3 C=4
      { harmonyBundle B ... }
      query                     assign B=3 C=4
      report 42.5               assign B=4 C=2
      report 57.0               ... eventually:
      query                     done B=4 C=2 perf=57.0
    v} *)

open Harmony_param

type direction = Minimize | Maximize

type message =
  | Register of { spec : string; direction : direction }
      (** RSL text; restarts the server's session *)
  | Query  (** what configuration should I run? *)
  | Report of float  (** performance of the last assigned configuration *)

type reply =
  | Assign of (string * int) list  (** bundle name, value — in spec order *)
  | Done of { best : (string * int) list; performance : float }
  | Rejected of string  (** protocol or parse error *)

type t

val create : ?options:Simplex.options -> unit -> t
(** A server with no registered client yet.  [options] bounds each
    session's search (budget, tolerance, initial simplex). *)

val handle : t -> message -> reply
(** Process one message.  [Query] before [Register], or [Report]
    without an outstanding assignment, yields [Rejected].  Every
    assignment is feasible under the registered restrictions
    (box proposals are projected with {!Rsl.repair}). *)

val spec : t -> Rsl.t option
(** The currently registered specification, if any. *)

val parse_message : string -> (message, string) result
(** Parse the text form: ["register min|max\n<rsl...>"], ["query"],
    ["report <float>"]. *)

val reply_to_string : reply -> string
(** ["assign B=3 C=4"], ["done B=4 C=2 perf=57"], ["error <msg>"]. *)
