(** Baseline search strategies.

    Comparators for the simplex tuner: pure random sampling, full
    enumeration (the exhaustive search behind Figure 4's performance
    distributions), and Powell's direction-set method (Section 7's
    closest related optimizer: repeated one-dimensional minimizations
    with direction updates, no simplex). *)

open Harmony_param
open Harmony_objective

type outcome = {
  best_config : Space.config;
  best_performance : float;
  trace : Recorder.entry list;
  evaluations : int;
}

val random_search :
  Harmony_numerics.Rng.t -> ?max_evaluations:int -> Objective.t -> outcome
(** Uniform sampling over the grid (default 400 evaluations). *)

val exhaustive : ?limit:int -> Objective.t -> outcome
(** Evaluate every grid configuration.
    @raise Invalid_argument when the space cardinality exceeds
    [limit] (default 1_000_000). *)

val sweep : ?limit:int -> Objective.t -> float array
(** All grid performances in enumeration order (same limit as
    {!exhaustive}) — the raw material of performance-distribution
    histograms. *)

val random_sweep :
  Harmony_numerics.Rng.t -> samples:int -> Objective.t -> float array
(** Monte-Carlo approximation of {!sweep} for spaces too large to
    enumerate. *)

val powell :
  ?max_evaluations:int -> ?line_points:int -> Objective.t -> outcome
(** Powell's method adapted to the grid: line searches sample
    [line_points] (default 9) snapped points along each direction;
    after each round the average displacement replaces the direction
    of largest improvement. *)

val simulated_annealing :
  Harmony_numerics.Rng.t ->
  ?max_evaluations:int ->
  ?initial_temperature:float ->
  Objective.t ->
  outcome
(** Grid simulated annealing: random single-coordinate neighbour
    moves, Metropolis acceptance, geometric cooling to ~1% of the
    initial temperature (default: 10% of the first measurement's
    magnitude) over the budget (default 400). *)
