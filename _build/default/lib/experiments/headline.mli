(** The paper's headline claim (Abstract / Section 8): taken together,
    the improvements reduce the time spent in the initial unstable
    performance stage by 35% up to 50%, while making the process more
    stable (fewer configurations with bad performance).

    We compare the original system (extreme initial simplex, no
    history) against the fully improved one (spread initial simplex
    plus training on prior-run experience) on both web-service
    workloads. *)

type row = {
  workload : string;
  original_unstable : int;     (** iterations before convergence, original *)
  improved_unstable : int;
  reduction : float;           (** 1 - improved/original *)
  original_bad : int;          (** bad-performance iterations *)
  improved_bad : int;
}

type result = { rows : row list }

val run : ?max_evaluations:int -> ?seed:int -> unit -> result

val table : ?max_evaluations:int -> ?seed:int -> unit -> Report.table
