open Harmony_param

type scenario = {
  name : string;
  unrestricted : int;
  restricted : int;
  reduction : float;
  spec : string;
}

type result = { scenarios : scenario list }

(* B in [1, A-2]; C in [1, A-1-$B]; D = A-B-C is determined, so only
   two bundles are tuned (Appendix B's worked example). *)
let connectors_spec ~total =
  if total < 3 then invalid_arg "Fig10.connectors_spec: total < 3";
  Rsl.parse
    (Printf.sprintf
       "{ harmonyBundle B { int {1 %d 1} }}\n{ harmonyBundle C { int {1 %d-$B 1} }}"
       (total - 2) (total - 1))

(* Partition sizes P1..P(n-1); Pi at least 1 and small enough to leave
   one row for each remaining block (the paper's scientific-library
   example). *)
let partition_spec ~rows ~blocks =
  if blocks < 2 || rows < blocks then invalid_arg "Fig10.partition_spec: bad shape";
  let bundle i =
    let remaining_blocks = blocks - i in
    let prior = List.init (i - 1) (fun j -> Printf.sprintf "-$P%d" (j + 1)) in
    Printf.sprintf "{ harmonyBundle P%d { int {1 %d%s 1} }}" i
      (rows - remaining_blocks)
      (String.concat "" prior)
  in
  Rsl.parse (String.concat "\n" (List.init (blocks - 1) (fun i -> bundle (i + 1))))

(* The same bundles with their conditional bounds replaced by the full
   static range: what the search space costs without restriction. *)
let unrestricted_count ~per_param ~params = int_of_float (float_of_int per_param ** float_of_int params)

let scenario_of name spec ~unrestricted =
  let restricted = Rsl.feasible_count spec in
  {
    name;
    unrestricted;
    restricted;
    reduction = 1.0 -. (float_of_int restricted /. float_of_int unrestricted);
    spec = Rsl.to_string spec;
  }

let run ?(total = 10) ?(rows = 20) ?(blocks = 4) () =
  let connectors =
    scenario_of "connectors (B+C+D=A)" (connectors_spec ~total)
      (* Unrestricted: B, C independently in [1, A]. *)
      ~unrestricted:(unrestricted_count ~per_param:total ~params:2)
  in
  let partition =
    scenario_of
      (Printf.sprintf "row partition (k=%d, n=%d)" rows blocks)
      (partition_spec ~rows ~blocks)
      (* Unrestricted: each of the n-1 sizes in [1, k]. *)
      ~unrestricted:(unrestricted_count ~per_param:rows ~params:(blocks - 1))
  in
  { scenarios = [ connectors; partition ] }

let table () =
  let r = run () in
  let rows =
    List.map
      (fun s ->
        [
          s.name;
          string_of_int s.unrestricted;
          string_of_int s.restricted;
          Report.pct s.reduction;
        ])
      r.scenarios
  in
  Report.make ~id:"fig10"
    ~title:"Search-space reduction by parameter restriction (Appendix B)"
    ~columns:[ "scenario"; "unrestricted"; "restricted"; "reduction" ]
    ~notes:
      (List.map (fun s -> s.name ^ ": " ^ String.concat " " (String.split_on_char '\n' s.spec))
         r.scenarios)
    rows
