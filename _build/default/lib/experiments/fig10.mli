(** Appendix B / Figure 10: search-space reduction by parameter
    restriction.

    Two scenarios from the paper:

    - {b connectors}: a node runs a fixed total of A processes split
      between disk-I/O (B), computation (C) and networking (D)
      processes; knowing B+C+D=A, only B and C need tuning, with
      C's range conditioned on B — the dashed region of Figure 10 is
      pruned.
    - {b row partition}: a k-row matrix is split into n row blocks;
      block i's size range is conditioned on the earlier blocks.

    We count feasible configurations with and without restriction and
    verify the enumerated restricted space contains exactly the
    meaningful configurations. *)

type scenario = {
  name : string;
  unrestricted : int;  (** configurations before restriction *)
  restricted : int;    (** configurations after restriction *)
  reduction : float;   (** 1 - restricted/unrestricted *)
  spec : string;       (** the resource-specification-language text *)
}

type result = { scenarios : scenario list }

val connectors_spec : total:int -> Harmony_param.Rsl.t
(** The B/C/(D) specification for A = [total] processes, at least one
    process per task type. *)

val partition_spec : rows:int -> blocks:int -> Harmony_param.Rsl.t
(** Row-partition specification: [blocks - 1] free sizes, each at
    least 1, leaving at least 1 row per remaining block. *)

val run : ?total:int -> ?rows:int -> ?blocks:int -> unit -> result
(** Defaults: A=10 processes; 20 rows into 4 blocks. *)

val table : unit -> Report.table
