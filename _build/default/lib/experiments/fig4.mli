(** Figure 4: performance distribution of the search space.

    The paper compares the distribution of (normalized 1..50)
    performance values over the whole search space, obtained by
    exhaustive search, for the real cluster-based web service under a
    shopping workload against the DataGen synthetic data — showing
    the synthetic data emulates the measured system.

    Our spaces are too large to enumerate literally, so the
    distribution is estimated from a seeded uniform sample of the
    grid (a Monte-Carlo exhaustive search); both systems use the same
    sample size. *)

type result = {
  buckets : string array;            (** "1-5", "6-10", ... "46-50" *)
  webservice_fraction : float array; (** fraction of configurations *)
  synthetic_fraction : float array;
  samples : int;
}

val run : ?samples:int -> ?seed:int -> unit -> result
(** Defaults: 20_000 samples, seed 7. *)

val table : ?samples:int -> ?seed:int -> unit -> Report.table
