(** Figure 5: parameter sensitivity of the synthetic data under
    measurement perturbation.

    Fifteen tunable parameters (D..R), two of which (H and M) were
    generated performance-irrelevant; the prioritizing tool is run
    with the performance output perturbed by 0%, 5%, 10% and 25%
    uniform noise.  The tool should assign H and M (near-)zero
    sensitivity at every noise level — robustness to run-to-run
    variation. *)

type result = {
  names : string array;                 (** parameter names D..R *)
  perturbations : float array;          (** 0.0, 0.05, 0.10, 0.25 *)
  sensitivities : float array array;    (** [perturbation][parameter] *)
  irrelevant : string list;             (** ground truth: ["H"; "M"] *)
}

val run : ?seed:int -> ?perturbations:float array -> unit -> result

val table : ?seed:int -> unit -> Report.table
