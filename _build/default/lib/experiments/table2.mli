(** Table 2: tuning with and without prior histories.

    The web service serves a workload with and without first training
    the tuning server on historical data recorded under {e another}
    workload (never seen for the current one): the shopping run is
    trained with browsing-workload experience, the ordering run with
    shopping-workload experience.  Columns follow the paper:
    convergence time and the initial performance-oscillation mean
    (standard deviation); we also report the bad-performance iteration
    counts the paper quotes in the text (9 vs 1 for shopping, 11 vs 3
    for ordering). *)

type row = {
  workload : string;
  with_history : bool;
  convergence_time : int;
  initial_mean : float;
  initial_stddev : float;
  bad_iterations : int;
  performance : float;
}

type result = {
  rows : row list;
  convergence_reduction : (string * float) list;
}

val run : ?max_evaluations:int -> ?seed:int -> unit -> result

val table : ?max_evaluations:int -> ?seed:int -> unit -> Report.table
