lib/experiments/fig8.ml: Array Fun Harmony Harmony_webservice Model Report Sensitivity Tpcw Wsconfig
