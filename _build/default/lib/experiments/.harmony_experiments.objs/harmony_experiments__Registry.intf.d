lib/experiments/registry.mli: Format Report
