lib/experiments/registry.ml: Fig10 Fig4 Fig5 Fig6 Fig7 Fig8 Fig9 Headline List Report Restriction Table1 Table2
