lib/experiments/restriction.mli: Report
