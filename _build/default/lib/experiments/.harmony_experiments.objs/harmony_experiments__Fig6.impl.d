lib/experiments/fig6.ml: Harmony Harmony_datagen Harmony_numerics Harmony_objective List Printf Report Sensitivity Subspace Tuner
