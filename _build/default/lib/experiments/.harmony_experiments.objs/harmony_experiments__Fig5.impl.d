lib/experiments/fig5.ml: Array Harmony Harmony_datagen Harmony_numerics Harmony_objective Harmony_param List Param Report Sensitivity Space String
