lib/experiments/fig7.ml: Analyzer Array Float Harmony Harmony_datagen Harmony_numerics Harmony_objective History List Printf Report Tuner
