lib/experiments/restriction.ml: Array Fig10 Float Harmony Harmony_objective Harmony_param List Objective Param Printf Report Rsl Space Tuner
