lib/experiments/fig9.ml: Harmony Harmony_numerics Harmony_objective Harmony_webservice List Model Report Sensitivity Subspace Tpcw Tuner
