lib/experiments/headline.mli: Report
