lib/experiments/fig10.ml: Harmony_param List Printf Report Rsl String
