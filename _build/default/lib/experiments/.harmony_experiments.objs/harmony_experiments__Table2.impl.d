lib/experiments/table2.ml: Analyzer Harmony Harmony_numerics Harmony_objective Harmony_webservice History List Model Printf Report Tpcw Tuner
