lib/experiments/fig4.ml: Array Baselines Harmony Harmony_datagen Harmony_numerics Harmony_webservice Model Printf Report Tpcw
