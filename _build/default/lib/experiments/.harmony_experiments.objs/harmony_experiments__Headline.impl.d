lib/experiments/headline.ml: Analyzer Harmony Harmony_numerics Harmony_objective Harmony_webservice History List Model Report Tpcw Tuner
