lib/experiments/fig10.mli: Harmony_param Report
