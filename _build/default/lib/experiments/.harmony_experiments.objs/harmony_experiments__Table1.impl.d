lib/experiments/table1.ml: Harmony Harmony_webservice List Model Printf Report Tpcw Tuner
