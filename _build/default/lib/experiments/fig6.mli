(** Figure 6: tuning only the n most sensitive synthetic parameters.

    For each perturbation level, the system tunes the n most sensitive
    parameters (n = 1, 5, 9, 12, 15) while the rest stay at their
    defaults.  Bars in the paper show tuning time; points show the
    resulting application performance.  Expected shape: small n cuts
    tuning time dramatically (up to ~85%) while giving up little
    performance (<8%) at low noise. *)

type cell = {
  n : int;
  perturbation : float;
  tuning_time : int;        (** convergence iteration of the run *)
  performance : float;      (** noise-free performance of the tuned config *)
}

type result = {
  cells : cell list;
  full_time : int;          (** tuning time at n = all parameters, 0% noise *)
  full_performance : float;
}

val run : ?seed:int -> ?ns:int list -> ?perturbations:float list -> unit -> result

val table : ?seed:int -> unit -> Report.table
