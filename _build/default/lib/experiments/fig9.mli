(** Figure 9: tuning only the n most sensitive web-service parameters.

    For n = 1, 3, 6, 10 and both the shopping and ordering workloads:
    tuning time (bars) and resulting WIPS (points).  The paper reports
    up to 71.8% tuning-time savings at under 2.5% WIPS loss. *)

type cell = {
  workload : string;
  n : int;
  tuning_time : int;
  wips : float;
}

type result = { cells : cell list }

val run : ?ns:int list -> unit -> result

val table : unit -> Report.table
