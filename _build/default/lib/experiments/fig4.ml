open Harmony
open Harmony_webservice
module Rng = Harmony_numerics.Rng
module Stats = Harmony_numerics.Stats

type result = {
  buckets : string array;
  webservice_fraction : float array;
  synthetic_fraction : float array;
  samples : int;
}

let bucket_labels =
  Array.init 10 (fun i -> Printf.sprintf "%d-%d" ((5 * i) + 1) (5 * (i + 1)))

let distribution perfs =
  (* Normalize onto [1, 50] as in the paper, then 10 buckets. *)
  let scaled = Stats.rescale ~lo:1.0 ~hi:50.0 perfs in
  Stats.histogram_fractions ~buckets:10 ~lo:1.0 ~hi:50.0 scaled

let run ?(samples = 20_000) ?(seed = 7) () =
  if samples < 10 then invalid_arg "Fig4.run: too few samples";
  let ws_obj = Model.objective ~mix:Tpcw.shopping () in
  let ws_perfs = Baselines.random_sweep (Rng.create seed) ~samples ws_obj in
  let g = Harmony_datagen.Generator.synthetic_webservice () in
  let syn_obj =
    Harmony_datagen.Generator.objective g
      ~workload:Harmony_datagen.Generator.shopping_mix
  in
  let syn_perfs = Baselines.random_sweep (Rng.create (seed + 1)) ~samples syn_obj in
  {
    buckets = bucket_labels;
    webservice_fraction = distribution ws_perfs;
    synthetic_fraction = distribution syn_perfs;
    samples;
  }

let table ?samples ?seed () =
  let r = run ?samples ?seed () in
  let rows =
    Array.to_list
      (Array.mapi
         (fun i label ->
           [
             label;
             Report.pct r.webservice_fraction.(i);
             Report.pct r.synthetic_fraction.(i);
           ])
         r.buckets)
  in
  Report.make ~id:"fig4" ~title:"Performance distribution (normalized 1-50)"
    ~columns:[ "bucket"; "cluster-based web service"; "synthetic data" ]
    ~notes:
      [
        Printf.sprintf
          "%d uniform samples per system stand in for the paper's exhaustive search"
          r.samples;
        "paper: the two distributions are approximately the same shape";
      ]
    rows
