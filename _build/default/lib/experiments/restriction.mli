(** Appendix B's closing claim: "by observing the relations among
    parameters and eliminating infeasible configurations, this
    technique ... speeds up the tuning process."

    We tune the connector-allocation scenario (B + C + D = A processes
    across disk/compute/network tasks) two ways with the same budget:

    - {b restricted}: the tuner works over the RSL box with proposals
      projected into the feasible region ({!Harmony_param.Rsl.repair});
    - {b unrestricted}: the tuner sees the naive B, C box where
      infeasible combinations (B + C >= A) simply measure terribly —
      what a tuner without the restriction language faces.

    Both minimize the completion time of the slowest task group. *)

type row = {
  variant : string;
  feasible_space : int;         (** configurations the search can express *)
  settling_time : int;          (** iterations until the last >0.5% improvement *)
  best_time : float;            (** completion time found *)
  wasted_infeasible : int;      (** evaluations spent on infeasible configs *)
}

type result = { rows : row list; optimum : float }

val run : ?total:int -> ?max_evaluations:int -> unit -> result
(** Defaults: A = 24 processes, 150 evaluations. *)

val table : unit -> Report.table
