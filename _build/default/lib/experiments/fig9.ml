open Harmony
open Harmony_webservice
module Rng = Harmony_numerics.Rng
module Objective = Harmony_objective.Objective

type cell = { workload : string; n : int; tuning_time : int; wips : float }
type result = { cells : cell list }

(* Run-to-run variation of the live system: each replica tunes under
   a differently-seeded 3% measurement noise; times and resulting
   WIPS are averaged. *)
let replicas = 5

let noise_level = 0.03

let cells_for mix ns =
  let clean = Model.objective ~mix () in
  let report = Sensitivity.analyze clean in
  List.map
    (fun n ->
      let indices = Sensitivity.top_n report n in
      let times = ref 0 and wips_sum = ref 0.0 in
      for r = 1 to replicas do
        let noisy =
          Objective.with_noise (Rng.create ((1000 * r) + n)) ~level:noise_level clean
        in
        let sub = Subspace.project noisy ~indices () in
        let sub_obj = Subspace.objective sub in
        let outcome = Tuner.tune sub_obj in
        let m = Tuner.Metrics.of_outcome sub_obj outcome in
        times := !times + m.Tuner.Metrics.settling_iteration;
        wips_sum :=
          !wips_sum
          +. clean.Objective.eval (Subspace.embed sub outcome.Tuner.best_config)
      done;
      {
        workload = mix.Tpcw.label;
        n;
        tuning_time = !times / replicas;
        wips = !wips_sum /. float_of_int replicas;
      })
    ns

let run ?(ns = [ 1; 3; 6; 10 ]) () =
  { cells = cells_for Tpcw.shopping ns @ cells_for Tpcw.ordering ns }

let table () =
  let r = run () in
  let rows =
    List.map
      (fun c ->
        [ c.workload; string_of_int c.n; string_of_int c.tuning_time; Report.f2 c.wips ])
      r.cells
  in
  Report.make ~id:"fig9"
    ~title:"Tuning only the n most sensitive web-service parameters"
    ~columns:[ "workload"; "n"; "tuning time (iters)"; "WIPS" ]
    ~notes:
      [ "paper: up to 71.8% tuning-time saving at <2.5% WIPS loss" ]
    rows
