open Harmony
open Harmony_param
open Harmony_objective

type row = {
  variant : string;
  feasible_space : int;
  settling_time : int;
  best_time : float;
  wasted_infeasible : int;
}

type result = { rows : row list; optimum : float }

(* Task demands: disk-I/O, computation, networking work units; the
   completion time of an allocation is the slowest task's. *)
let demand = [| 30.0; 80.0; 50.0 |]

let completion total b c =
  let d = total - b - c in
  if b < 1 || c < 1 || d < 1 then infinity
  else
    Float.max
      (demand.(0) /. float_of_int b)
      (Float.max (demand.(1) /. float_of_int c) (demand.(2) /. float_of_int d))

let run ?(total = 24) ?(max_evaluations = 150) () =
  let spec = Fig10.connectors_spec ~total in
  let optimum =
    let best = ref infinity in
    for b = 1 to total - 2 do
      for c = 1 to total - 1 - b do
        best := Float.min !best (completion total b c)
      done
    done;
    !best
  in
  let options = { Tuner.default_options with Tuner.max_evaluations } in
  (* Restricted: proposals projected into the feasible region, so no
     evaluation is ever spent on an infeasible configuration. *)
  let restricted =
    let space = Rsl.to_space spec in
    let obj =
      Objective.create ~space ~direction:Objective.Lower_is_better (fun conf ->
          let f = Rsl.repair spec conf in
          completion total (int_of_float f.(0)) (int_of_float f.(1)))
    in
    let outcome = Tuner.tune ~options obj in
    let m = Tuner.Metrics.of_outcome obj outcome in
    {
      variant = "restricted (RSL)";
      feasible_space = Rsl.feasible_count spec;
      settling_time = m.Tuner.Metrics.settling_iteration;
      best_time = m.Tuner.Metrics.performance;
      wasted_infeasible = 0;
    }
  in
  (* Unrestricted: the naive box; infeasible points measure as a large
     penalty (the system cannot run at all). *)
  let unrestricted =
    let wasted = ref 0 in
    let space =
      Space.create
        [
          Param.int_range ~name:"B" ~lo:1 ~hi:total ~default:(total / 3) ();
          Param.int_range ~name:"C" ~lo:1 ~hi:total ~default:(total / 3) ();
        ]
    in
    let obj =
      Objective.create ~space ~direction:Objective.Lower_is_better (fun conf ->
          let t = completion total (int_of_float conf.(0)) (int_of_float conf.(1)) in
          if Float.is_finite t then t
          else begin
            incr wasted;
            1000.0
          end)
    in
    let outcome = Tuner.tune ~options obj in
    let m = Tuner.Metrics.of_outcome obj outcome in
    {
      variant = "unrestricted box";
      feasible_space = total * total;
      settling_time = m.Tuner.Metrics.settling_iteration;
      best_time = m.Tuner.Metrics.performance;
      wasted_infeasible = !wasted;
    }
  in
  { rows = [ restricted; unrestricted ]; optimum }

let table () =
  let r = run () in
  let rows =
    List.map
      (fun row ->
        [
          row.variant;
          string_of_int row.feasible_space;
          string_of_int row.settling_time;
          Report.f2 row.best_time;
          string_of_int row.wasted_infeasible;
        ])
      r.rows
  in
  Report.make ~id:"restriction"
    ~title:"Appendix B: tuning with vs without parameter restriction"
    ~columns:
      [ "variant"; "expressible configs"; "settling (iters)"; "best time";
        "infeasible evals" ]
    ~notes:
      [
        Printf.sprintf "exhaustive optimum: %.2f" r.optimum;
        "paper: eliminating infeasible configurations speeds up the tuning process";
      ]
    rows
