(** Experiment registry: every table/figure of the paper, runnable by
    id from the CLI and the bench harness. *)

val all : (string * string * (unit -> Report.table)) list
(** (id, description, runner) for every experiment, in paper order. *)

val ids : string list

val find : string -> (unit -> Report.table) option

val run_all : Format.formatter -> unit
(** Run every experiment and print its table. *)
