open Harmony
open Harmony_webservice
module Rng = Harmony_numerics.Rng

type row = {
  workload : string;
  original_unstable : int;
  improved_unstable : int;
  reduction : float;
  original_bad : int;
  improved_bad : int;
}

type result = { rows : row list }

let run ?(max_evaluations = 150) ?(seed = 23) () =
  let rows =
    List.map
      (fun (served, trained_on) ->
        let noisy mix noise_seed =
          Harmony_objective.Objective.with_noise (Rng.create noise_seed)
            ~level:0.03
            (Model.objective ~mix ())
        in
        let obj = noisy served (seed + 100) in
        (* Original system: extreme initial exploration, no history. *)
        let original =
          Tuner.tune
            ~options:{ Tuner.original_options with Tuner.max_evaluations }
            obj
        in
        (* Fully improved: spread refinement + prior-run experience. *)
        let trainer = noisy trained_on (seed + 200) in
        let experience =
          Tuner.tune ~options:{ Tuner.default_options with Tuner.max_evaluations } trainer
        in
        let db = History.create () in
        let chars =
          Tpcw.observed_frequencies (Rng.create seed) trained_on ~samples:500
        in
        ignore
          (History.add_outcome db ~label:trained_on.Tpcw.label ~characteristics:chars
             experience);
        let analyzer = Analyzer.create db in
        let observed =
          Tpcw.observed_frequencies (Rng.create (seed + 1)) served ~samples:500
        in
        let improved, _ =
          Analyzer.tune_with_experience
            ~options:{ Tuner.default_options with Tuner.max_evaluations }
            analyzer obj ~characteristics:observed
        in
        let reference =
          Harmony_objective.Objective.worst_of obj
            [| original.Tuner.best_performance; improved.Tuner.best_performance |]
        in
        let mo = Tuner.Metrics.of_outcome ~convergence_fraction:0.02 ~reference obj original in
        let mi = Tuner.Metrics.of_outcome ~convergence_fraction:0.02 ~reference obj improved in
        let ou = mo.Tuner.Metrics.convergence_iteration in
        let iu = mi.Tuner.Metrics.convergence_iteration in
        {
          workload = served.Tpcw.label;
          original_unstable = ou;
          improved_unstable = iu;
          reduction = 1.0 -. (float_of_int iu /. float_of_int (max 1 ou));
          original_bad = mo.Tuner.Metrics.bad_iterations;
          improved_bad = mi.Tuner.Metrics.bad_iterations;
        })
      [ (Tpcw.shopping, Tpcw.browsing); (Tpcw.ordering, Tpcw.shopping) ]
  in
  { rows }

let table ?max_evaluations ?seed () =
  let r = run ?max_evaluations ?seed () in
  let rows =
    List.map
      (fun row ->
        [
          row.workload;
          string_of_int row.original_unstable;
          string_of_int row.improved_unstable;
          Report.pct row.reduction;
          string_of_int row.original_bad;
          string_of_int row.improved_bad;
        ])
      r.rows
  in
  Report.make ~id:"headline"
    ~title:"Headline: reduction of the initial unstable tuning stage"
    ~columns:
      [
        "workload"; "unstable iters (original)"; "unstable iters (improved)";
        "reduction"; "bad iters (original)"; "bad iters (improved)";
      ]
    ~notes:[ "paper: 35% up to 50% reduction, with a smoother tuning process" ]
    rows
