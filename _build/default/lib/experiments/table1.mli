(** Table 1: improved search refinement.

    Original (extreme-valued initial simplex) versus improved
    (interior spread) tuning of the web service under the shopping and
    ordering workloads.  Columns follow the paper: tuned performance
    (WIPS), convergence time (iterations), and the worst performance
    seen during the oscillation stage.  The paper reports ~35% shorter
    convergence with similar tuned performance, and a smaller initial
    oscillation for the shopping workload. *)

type row = {
  workload : string;
  variant : string;           (** "original" or "improved" *)
  performance : float;
  convergence_time : int;
  worst_performance : float;
}

type result = {
  rows : row list;
  convergence_reduction : (string * float) list;
      (** per workload: 1 - improved/original convergence time *)
}

val run : ?max_evaluations:int -> unit -> result
(** Default budget: 150 evaluations per run (the scale of the
    paper's runs).  Convergence is measured against each run's own
    final best, within 2%. *)

val table : ?max_evaluations:int -> unit -> Report.table
