(** Plain-text tables for the experiment harness: every figure and
    table of the paper is regenerated as one of these. *)

type table = {
  id : string;          (** e.g. "fig5", "table1" *)
  title : string;
  columns : string list;
  rows : string list list;
  notes : string list;  (** paper-vs-measured commentary *)
}

val make :
  id:string -> title:string -> columns:string list ->
  ?notes:string list -> string list list -> table

val print : Format.formatter -> table -> unit
(** Render with aligned columns, a rule under the header, and notes
    underneath. *)

val to_string : table -> string

val f1 : float -> string
(** One-decimal float. *)

val f2 : float -> string

val pct : float -> string
(** Percentage with one decimal, e.g. "12.5%". *)
