let all =
  [
    ( "fig4",
      "performance distribution: web service vs synthetic data",
      fun () -> Fig4.table () );
    ( "fig5",
      "synthetic-data parameter sensitivity under perturbation",
      fun () -> Fig5.table () );
    ( "fig6",
      "tuning the n most sensitive synthetic parameters",
      fun () -> Fig6.table () );
    ( "fig7",
      "tuning with experiences at increasing workload distance",
      fun () -> Fig7.table () );
    ("fig8", "web-service parameter sensitivity", fun () -> Fig8.table ());
    ( "fig9",
      "tuning the n most sensitive web-service parameters",
      fun () -> Fig9.table () );
    ( "table1",
      "improved search refinement (original vs improved init)",
      fun () -> Table1.table () );
    ( "table2",
      "tuning with and without prior histories",
      fun () -> Table2.table () );
    ( "fig10",
      "search-space reduction by parameter restriction",
      fun () -> Fig10.table () );
    ( "restriction",
      "tuning with vs without parameter restriction",
      fun () -> Restriction.table () );
    ( "headline",
      "35-50% reduction of the initial unstable stage",
      fun () -> Headline.table () );
  ]

let ids = List.map (fun (id, _, _) -> id) all

let find id =
  List.find_map (fun (id', _, f) -> if id = id' then Some f else None) all

let run_all ppf =
  List.iter (fun (_, _, f) -> Report.print ppf (f ())) all
