(** Figure 8: parameter sensitivity in the cluster-based web service.

    The prioritizing tool applied to the ten web-service parameters
    under the shopping and ordering workloads.  The paper's headline
    observations: the MySQL network buffer matters most when serving
    the ordering workload (database-heavy), the proxy cache memory
    when serving the shopping workload (browse/cacheable-heavy), and
    the HTTP buffer / accept-count parameters are relatively
    unimportant for both. *)

type result = {
  names : string array;
  shopping : float array;   (** sensitivity per parameter *)
  ordering : float array;
}

val run : unit -> result

val table : unit -> Report.table

val rank : float array -> string array -> string list
(** Parameter names by decreasing sensitivity (helper for checks). *)
