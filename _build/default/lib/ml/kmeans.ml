module Rng = Harmony_numerics.Rng

type result = {
  centroids : float array array;
  assignment : int array;
  inertia : float;
  iterations : int;
}

let squared_distance a b =
  let s = ref 0.0 in
  Array.iteri
    (fun i x ->
      let d = x -. b.(i) in
      s := !s +. (d *. d))
    a;
  !s

let assign centroids query = Nearest.nearest_index centroids query

(* k-means++ seeding: each next centroid is drawn with probability
   proportional to squared distance from the chosen ones. *)
let seed_plus_plus rng k points =
  let n = Array.length points in
  let centroids = Array.make k points.(0) in
  centroids.(0) <- Array.copy points.(Rng.int rng n);
  let d2 = Array.map (fun p -> squared_distance p centroids.(0)) points in
  for c = 1 to k - 1 do
    let total = Array.fold_left ( +. ) 0.0 d2 in
    let chosen =
      if total <= 0.0 then Rng.int rng n
      else begin
        let u = Rng.float rng total in
        let acc = ref 0.0 in
        let idx = ref (n - 1) in
        (try
           Array.iteri
             (fun i d ->
               acc := !acc +. d;
               if u < !acc then begin
                 idx := i;
                 raise Exit
               end)
             d2
         with Exit -> ());
        !idx
      end
    in
    centroids.(c) <- Array.copy points.(chosen);
    Array.iteri
      (fun i p -> d2.(i) <- Float.min d2.(i) (squared_distance p centroids.(c)))
      points
  done;
  centroids

let fit rng ~k ?(max_iter = 100) points =
  let n = Array.length points in
  if n = 0 then invalid_arg "Kmeans.fit: no points";
  if k < 1 || k > n then invalid_arg "Kmeans.fit: k out of range";
  let dim = Array.length points.(0) in
  Array.iter
    (fun p -> if Array.length p <> dim then invalid_arg "Kmeans.fit: ragged points")
    points;
  let centroids = seed_plus_plus rng k points in
  let assignment = Array.make n 0 in
  let changed = ref true in
  let iterations = ref 0 in
  while !changed && !iterations < max_iter do
    incr iterations;
    changed := false;
    Array.iteri
      (fun i p ->
        let c = assign centroids p in
        if c <> assignment.(i) then begin
          assignment.(i) <- c;
          changed := true
        end)
      points;
    (* Recompute centroids; empty clusters keep their position. *)
    let sums = Array.init k (fun _ -> Array.make dim 0.0) in
    let counts = Array.make k 0 in
    Array.iteri
      (fun i p ->
        let c = assignment.(i) in
        counts.(c) <- counts.(c) + 1;
        Array.iteri (fun j v -> sums.(c).(j) <- sums.(c).(j) +. v) p)
      points;
    Array.iteri
      (fun c count ->
        if count > 0 then
          centroids.(c) <-
            Array.map (fun s -> s /. float_of_int count) sums.(c))
      counts
  done;
  let inertia =
    let s = ref 0.0 in
    Array.iteri
      (fun i p -> s := !s +. squared_distance p centroids.(assignment.(i)))
      points;
    !s
  in
  { centroids; assignment; inertia; iterations = !iterations }

let classifier rng ~k training =
  let _dim = Classifier.validate_training training in
  let { Classifier.features; labels } = training in
  let k = min k (Array.length features) in
  let { centroids; assignment; _ } = fit rng ~k features in
  let classes = Classifier.num_classes training in
  (* Majority label per cluster; empty clusters inherit label 0. *)
  let cluster_label =
    Array.init k (fun c ->
        let votes = Array.make classes 0 in
        Array.iteri
          (fun i a -> if a = c then votes.(labels.(i)) <- votes.(labels.(i)) + 1)
          assignment;
        let best = ref 0 in
        Array.iteri (fun l v -> if v > votes.(!best) then best := l) votes;
        !best)
  in
  {
    Classifier.name = Printf.sprintf "kmeans-%d" k;
    classify = (fun query -> cluster_label.(assign centroids query));
  }
