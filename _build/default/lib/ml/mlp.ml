module Rng = Harmony_numerics.Rng

type t = {
  mean : float array;
  std : float array;
  w1 : float array array; (* hidden x input *)
  b1 : float array;
  w2 : float array array; (* classes x hidden *)
  b2 : float array;
}

let standardize t x = Array.mapi (fun i v -> (v -. t.mean.(i)) /. t.std.(i)) x

let forward t x =
  let z = standardize t x in
  let hidden =
    Array.mapi
      (fun h row ->
        let s = ref t.b1.(h) in
        Array.iteri (fun i v -> s := !s +. (row.(i) *. v)) z;
        tanh !s)
      t.w1
  in
  let logits =
    Array.mapi
      (fun c row ->
        let s = ref t.b2.(c) in
        Array.iteri (fun h v -> s := !s +. (row.(h) *. v)) hidden;
        !s)
      t.w2
  in
  (z, hidden, logits)

let softmax logits =
  let m = Array.fold_left Float.max logits.(0) logits in
  let e = Array.map (fun v -> exp (v -. m)) logits in
  let total = Array.fold_left ( +. ) 0.0 e in
  Array.map (fun v -> v /. total) e

let predict_probabilities t x =
  let _, _, logits = forward t x in
  softmax logits

let classify t x =
  let p = predict_probabilities t x in
  let best = ref 0 in
  Array.iteri (fun i v -> if v > p.(!best) then best := i) p;
  !best

let fit rng ?(hidden = 16) ?(epochs = 200) ?(learning_rate = 0.05) training =
  let dim = Classifier.validate_training training in
  if hidden < 1 then invalid_arg "Mlp.fit: hidden < 1";
  if epochs < 1 then invalid_arg "Mlp.fit: epochs < 1";
  let { Classifier.features; labels } = training in
  let n = Array.length features in
  let classes = Classifier.num_classes training in
  let mean =
    Array.init dim (fun j ->
        Array.fold_left (fun acc f -> acc +. f.(j)) 0.0 features /. float_of_int n)
  in
  let std =
    Array.init dim (fun j ->
        let s =
          Array.fold_left
            (fun acc f ->
              let d = f.(j) -. mean.(j) in
              acc +. (d *. d))
            0.0 features
        in
        Float.max 1e-9 (sqrt (s /. float_of_int n)))
  in
  let init_weight fan_in = Rng.gaussian rng 0.0 (1.0 /. sqrt (float_of_int fan_in)) in
  let t =
    {
      mean;
      std;
      w1 = Array.init hidden (fun _ -> Array.init dim (fun _ -> init_weight dim));
      b1 = Array.make hidden 0.0;
      w2 = Array.init classes (fun _ -> Array.init hidden (fun _ -> init_weight hidden));
      b2 = Array.make classes 0.0;
    }
  in
  let order = Array.init n Fun.id in
  for _ = 1 to epochs do
    Rng.shuffle rng order;
    Array.iter
      (fun i ->
        let x = features.(i) and label = labels.(i) in
        let z, h, logits = forward t x in
        let p = softmax logits in
        (* Output gradient: dL/dlogit_c = p_c - [c = label]. *)
        let dlogit =
          Array.mapi (fun c pc -> pc -. if c = label then 1.0 else 0.0) p
        in
        (* Hidden gradient through tanh. *)
        let dh = Array.make (Array.length h) 0.0 in
        Array.iteri
          (fun c dc ->
            Array.iteri
              (fun hj w -> dh.(hj) <- dh.(hj) +. (dc *. w))
              t.w2.(c);
            t.b2.(c) <- t.b2.(c) -. (learning_rate *. dc);
            Array.iteri
              (fun hj hv ->
                t.w2.(c).(hj) <- t.w2.(c).(hj) -. (learning_rate *. dc *. hv))
              h)
          dlogit;
        Array.iteri
          (fun hj dhj ->
            let grad = dhj *. (1.0 -. (h.(hj) *. h.(hj))) in
            t.b1.(hj) <- t.b1.(hj) -. (learning_rate *. grad);
            Array.iteri
              (fun k zk ->
                t.w1.(hj).(k) <- t.w1.(hj).(k) -. (learning_rate *. grad *. zk))
              z)
          dh)
      order
  done;
  t

let classifier rng ?hidden ?epochs ?learning_rate training =
  let t = fit rng ?hidden ?epochs ?learning_rate training in
  { Classifier.name = "mlp"; classify = classify t }
