(** Least-squares nearest-neighbour classification — the paper's
    classification mechanism (Section 4.2): return the stored class
    [j] minimising [sum_k (c_jk - c_ok)^2]. *)

val least_squares : Classifier.training -> Classifier.t
(** 1-nearest-neighbour under squared Euclidean distance; ties go to
    the earliest training example. *)

val knn : k:int -> Classifier.training -> Classifier.t
(** Majority vote among the [k] nearest examples (ties to the class
    with the nearest member). Requires [k >= 1]. *)

val nearest_index : float array array -> float array -> int
(** Index of the row closest (squared Euclidean) to the query; the
    raw primitive both classifiers and the experience database use.
    @raise Invalid_argument on an empty matrix. *)
