(** A small multilayer perceptron (one tanh hidden layer, softmax
    output, SGD with cross-entropy) — the "ANN" plug-in of Figure 2.

    Deliberately tiny: workload-characterization vectors are short
    (14 entries for TPC-W interaction frequencies) and the number of
    stored experience classes small. *)

type t

val fit :
  Harmony_numerics.Rng.t ->
  ?hidden:int ->
  ?epochs:int ->
  ?learning_rate:float ->
  Classifier.training ->
  t
(** Defaults: 16 hidden units, 200 epochs, learning rate 0.05.
    Features are internally standardized (per-dimension mean/stddev
    from the training set). *)

val predict_probabilities : t -> float array -> float array
(** Softmax class probabilities. *)

val classify : t -> float array -> int

val classifier :
  Harmony_numerics.Rng.t ->
  ?hidden:int ->
  ?epochs:int ->
  ?learning_rate:float ->
  Classifier.training ->
  Classifier.t
