(** Common interface of the data analyzer's classification plug-ins.

    Figure 2 of the paper lists decision trees, k-means, and neural
    networks as interchangeable "machine learning clustering
    mechanisms"; the current implementation uses least-squares
    nearest-neighbour.  All of ours fit this signature: train on
    labelled feature vectors, then map an observed vector to the label
    of the best-matching class. *)

type t = {
  name : string;
  classify : float array -> int;
      (** Index of the matched class (into the training labels). *)
}

type training = { features : float array array; labels : int array }

val validate_training : training -> int
(** Checks shapes (non-empty, rectangular, labels in range, equal
    lengths) and returns the feature dimension.
    @raise Invalid_argument otherwise. *)

val num_classes : training -> int
(** [1 + max label]. *)

val accuracy : t -> training -> float
(** Fraction of the given examples the classifier labels correctly. *)
