lib/ml/classifier.mli:
