lib/ml/kmeans.mli: Classifier Harmony_numerics
