lib/ml/dtree.ml: Array Classifier Fun
