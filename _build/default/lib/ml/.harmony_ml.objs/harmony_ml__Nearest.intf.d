lib/ml/nearest.mli: Classifier
