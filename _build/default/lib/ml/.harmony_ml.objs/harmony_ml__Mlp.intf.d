lib/ml/mlp.mli: Classifier Harmony_numerics
