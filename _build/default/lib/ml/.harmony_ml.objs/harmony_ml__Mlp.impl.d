lib/ml/mlp.ml: Array Classifier Float Fun Harmony_numerics
