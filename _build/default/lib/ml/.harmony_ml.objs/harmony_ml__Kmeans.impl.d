lib/ml/kmeans.ml: Array Classifier Float Harmony_numerics Nearest Printf
