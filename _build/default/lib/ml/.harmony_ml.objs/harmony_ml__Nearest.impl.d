lib/ml/nearest.ml: Array Classifier Printf
