lib/ml/classifier.ml: Array
