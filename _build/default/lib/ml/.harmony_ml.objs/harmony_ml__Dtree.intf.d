lib/ml/dtree.mli: Classifier
