type t = { name : string; classify : float array -> int }
type training = { features : float array array; labels : int array }

let validate_training { features; labels } =
  let n = Array.length features in
  if n = 0 then invalid_arg "Classifier: empty training set";
  if Array.length labels <> n then invalid_arg "Classifier: labels length mismatch";
  let dim = Array.length features.(0) in
  if dim = 0 then invalid_arg "Classifier: empty feature vectors";
  Array.iter
    (fun f -> if Array.length f <> dim then invalid_arg "Classifier: ragged features")
    features;
  Array.iter
    (fun l -> if l < 0 then invalid_arg "Classifier: negative label")
    labels;
  dim

let num_classes { labels; _ } = 1 + Array.fold_left max 0 labels

let accuracy t { features; labels } =
  let n = Array.length features in
  if n = 0 then invalid_arg "Classifier.accuracy: empty set";
  let correct = ref 0 in
  Array.iteri
    (fun i f -> if t.classify f = labels.(i) then incr correct)
    features;
  float_of_int !correct /. float_of_int n
