(** CART-style decision tree over numeric features (Gini impurity,
    axis-aligned threshold splits).  Listed in Figure 2 as one of the
    data analyzer's predefined classification methods. *)

type tree =
  | Leaf of int
  | Node of { feature : int; threshold : float; left : tree; right : tree }
      (** queries with [x.(feature) <= threshold] go left *)

val fit : ?max_depth:int -> ?min_samples:int -> Classifier.training -> tree
(** Greedy top-down induction; stops at pure nodes, [max_depth]
    (default 8), or fewer than [min_samples] (default 2) examples. *)

val classify : tree -> float array -> int
val depth : tree -> int
val leaves : tree -> int

val classifier : ?max_depth:int -> ?min_samples:int -> Classifier.training -> Classifier.t
