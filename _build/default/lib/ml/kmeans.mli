(** Lloyd's k-means clustering.

    One of the data analyzer's clustering mechanisms (Figure 2).
    Useful for compressing an experience database: cluster historical
    workload characteristics and keep one representative per
    cluster. *)

type result = {
  centroids : float array array;
  assignment : int array;   (** cluster of each input point *)
  inertia : float;          (** sum of squared distances to centroids *)
  iterations : int;
}

val fit :
  Harmony_numerics.Rng.t -> k:int -> ?max_iter:int -> float array array -> result
(** [fit rng ~k points] clusters [points] into [k] groups
    (k-means++ seeding, Lloyd iterations until stable or [max_iter],
    default 100).  Requires [1 <= k <= Array.length points] and a
    rectangular non-empty matrix. *)

val assign : float array array -> float array -> int
(** Nearest centroid of a query point. *)

val classifier : Harmony_numerics.Rng.t -> k:int -> Classifier.training -> Classifier.t
(** Cluster the training features, give each cluster the majority
    label of its members, classify queries by nearest centroid. *)
