(** Dense row-major float matrices with the linear-algebra kernels the
    tuner needs: LU solve for square triangulation systems and the
    building blocks of least squares (Section 4.3 of the paper). *)

type t

val make : int -> int -> float -> t
(** [make rows cols x] is a [rows * cols] matrix filled with [x].
    Requires positive dimensions. *)

val init : int -> int -> (int -> int -> float) -> t
(** [init rows cols f] fills entry [(i, j)] with [f i j]. *)

val of_rows : float array array -> t
(** Copies a non-empty rectangular array of rows. *)

val to_rows : t -> float array array
val identity : int -> t
val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val copy : t -> t
val row : t -> int -> float array
val col : t -> int -> float array
val transpose : t -> t
val map : (float -> float) -> t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val mul : t -> t -> t
(** Matrix product; dimensions must agree. *)

val mul_vec : t -> float array -> float array
(** [mul_vec a x] is [a * x] for a column vector [x]. *)

val solve : t -> float array -> float array
(** [solve a b] solves the square system [a x = b] by LU decomposition
    with partial pivoting.
    @raise Failure if [a] is (numerically) singular. *)

val equal : ?eps:float -> t -> t -> bool
(** Entrywise comparison within [eps] (default [1e-9]). *)

val pp : Format.formatter -> t -> unit
