let qr_solve a b =
  let m = Matrix.rows a and n = Matrix.cols a in
  if m < n then invalid_arg "Lstsq.qr_solve: fewer rows than columns";
  if Array.length b <> m then invalid_arg "Lstsq.qr_solve: rhs size mismatch";
  let r = Matrix.copy a in
  let y = Array.copy b in
  (* Householder reflections applied in place to [r] and [y]. *)
  for k = 0 to n - 1 do
    let norm = ref 0.0 in
    for i = k to m - 1 do
      let v = Matrix.get r i k in
      norm := !norm +. (v *. v)
    done;
    let norm = sqrt !norm in
    if norm > 1e-13 then begin
      let alpha = if Matrix.get r k k > 0.0 then -.norm else norm in
      let v = Array.make m 0.0 in
      v.(k) <- Matrix.get r k k -. alpha;
      for i = k + 1 to m - 1 do
        v.(i) <- Matrix.get r i k
      done;
      let vtv = ref 0.0 in
      for i = k to m - 1 do
        vtv := !vtv +. (v.(i) *. v.(i))
      done;
      if !vtv > 1e-26 then begin
        for j = k to n - 1 do
          let dot = ref 0.0 in
          for i = k to m - 1 do
            dot := !dot +. (v.(i) *. Matrix.get r i j)
          done;
          let f = 2.0 *. !dot /. !vtv in
          for i = k to m - 1 do
            Matrix.set r i j (Matrix.get r i j -. (f *. v.(i)))
          done
        done;
        let dot = ref 0.0 in
        for i = k to m - 1 do
          dot := !dot +. (v.(i) *. y.(i))
        done;
        let f = 2.0 *. !dot /. !vtv in
        for i = k to m - 1 do
          y.(i) <- y.(i) -. (f *. v.(i))
        done
      end
    end
  done;
  let x = Array.make n 0.0 in
  for i = n - 1 downto 0 do
    let s = ref y.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (Matrix.get r i j *. x.(j))
    done;
    let d = Matrix.get r i i in
    if Float.abs d < 1e-12 then failwith "Lstsq.qr_solve: rank deficient";
    x.(i) <- !s /. d
  done;
  x

let minimum_norm a b =
  (* x = a^T (a a^T)^-1 b, with a ridge fallback if the Gram matrix is
     singular. *)
  let at = Matrix.transpose a in
  let gram = Matrix.mul a at in
  let z =
    try Matrix.solve gram b
    with Failure _ ->
      let n = Matrix.rows gram in
      let ridged = Matrix.add gram (Matrix.scale 1e-8 (Matrix.identity n)) in
      Matrix.solve ridged b
  in
  Matrix.mul_vec at z

let solve a b =
  let m = Matrix.rows a and n = Matrix.cols a in
  if Array.length b <> m then invalid_arg "Lstsq.solve: rhs size mismatch";
  if m >= n then
    try qr_solve a b
    with Failure _ ->
      (* Rank deficient: regularised normal equations. *)
      let at = Matrix.transpose a in
      let gram = Matrix.add (Matrix.mul at a) (Matrix.scale 1e-8 (Matrix.identity n)) in
      Matrix.solve gram (Matrix.mul_vec at b)
  else minimum_norm a b

let fit_hyperplane points values =
  let m = Array.length points in
  if m = 0 then invalid_arg "Lstsq.fit_hyperplane: no points";
  if Array.length values <> m then invalid_arg "Lstsq.fit_hyperplane: size mismatch";
  let k = Array.length points.(0) in
  let a = Matrix.init m (k + 1) (fun i j -> if j = k then 1.0 else points.(i).(j)) in
  solve a values

let predict_hyperplane coeffs point =
  let k = Array.length point in
  if Array.length coeffs <> k + 1 then
    invalid_arg "Lstsq.predict_hyperplane: coefficient size mismatch";
  let s = ref coeffs.(k) in
  for j = 0 to k - 1 do
    s := !s +. (coeffs.(j) *. point.(j))
  done;
  !s

let residual_norm a x b =
  let ax = Matrix.mul_vec a x in
  Stats.euclidean_distance ax b
