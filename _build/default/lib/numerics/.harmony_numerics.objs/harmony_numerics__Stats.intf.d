lib/numerics/stats.mli:
