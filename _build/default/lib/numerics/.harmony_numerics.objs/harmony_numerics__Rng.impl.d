lib/numerics/rng.ml: Array Float Random
