lib/numerics/matrix.ml: Array Float Format
