lib/numerics/rng.mli:
