lib/numerics/lstsq.ml: Array Float Matrix Stats
