(** Deterministic, explicitly seeded random number generation.

    Every stochastic component in the library threads one of these
    states so that experiments are reproducible bit-for-bit.  The
    implementation wraps [Random.State]; [split] derives an
    independent stream, which lets parallel experiment arms share a
    master seed without sharing a sequence. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val split : t -> t
(** [split t] derives a new generator whose stream is independent of
    the remainder of [t]'s stream. *)

val copy : t -> t
(** [copy t] duplicates the current state; both copies then produce
    the same sequence. *)

val int : t -> int -> int
(** [int t n] is uniform on [0, n-1]. Requires [n > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform on the inclusive range [lo, hi]. *)

val float : t -> float -> float
(** [float t x] is uniform on [0, x). *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform on [lo, hi). *)

val bool : t -> bool

val exponential : t -> float -> float
(** [exponential t mean] samples an exponential distribution with the
    given mean (not rate). *)

val gaussian : t -> float -> float -> float
(** [gaussian t mu sigma] samples a normal distribution via
    Box-Muller. *)

val perturb : t -> float -> float -> float
(** [perturb t p x] is [x] multiplied by a factor uniform in
    [1-p, 1+p]; the paper's "performance output perturbed from 0% to
    +/-25% with a uniform random distribution". *)

val choice : t -> 'a array -> 'a
(** [choice t a] picks a uniform element. Requires [a] non-empty. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t k n] draws [k] distinct indices from
    [0, n-1]. Requires [0 <= k <= n]. *)
