type t = Random.State.t

let create seed = Random.State.make [| seed; 0x9e3779b9; seed lxor 0x5bf03635 |]

let split t =
  (* Draw a fresh seed from the parent stream; the child is then
     decoupled from subsequent parent draws. *)
  let seed = Random.State.bits t in
  Random.State.make [| seed; Random.State.bits t |]

let copy = Random.State.copy
let int t n = Random.State.int t n

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + Random.State.int t (hi - lo + 1)

let float t x = Random.State.float t x
let uniform t lo hi = lo +. Random.State.float t (hi -. lo)
let bool t = Random.State.bool t

let exponential t mean =
  let u = 1.0 -. Random.State.float t 1.0 in
  -.mean *. log u

let gaussian t mu sigma =
  let u1 = 1.0 -. Random.State.float t 1.0 in
  let u2 = Random.State.float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let perturb t p x = x *. uniform t (1.0 -. p) (1.0 +. p)

let choice t a =
  if Array.length a = 0 then invalid_arg "Rng.choice: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  let pool = Array.init n (fun i -> i) in
  (* Partial Fisher-Yates: after k swaps the prefix is the sample. *)
  for i = 0 to k - 1 do
    let j = int_in t i (n - 1) in
    let tmp = pool.(i) in
    pool.(i) <- pool.(j);
    pool.(j) <- tmp
  done;
  Array.sub pool 0 k
