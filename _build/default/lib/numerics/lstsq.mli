(** Linear least squares.

    The paper's performance estimator (Section 4.3) builds the system
    [[C_i 1] x = P_i] from historical configurations and solves it
    exactly when square, or "for under- or over-determined systems,
    appl[ies] the least square method".  This module provides that
    solver: Householder QR for the over-determined case and a
    minimum-norm solution for the under-determined case. *)

val solve : Matrix.t -> float array -> float array
(** [solve a b] returns [x] minimising [||a x - b||_2].

    - square [a]: exact solve (falls back to least squares if
      singular);
    - more rows than columns: QR least squares;
    - fewer rows than columns: minimum-norm solution
      [x = a^T (a a^T)^-1 b] (with a small ridge term if the Gram
      matrix is singular).

    @raise Invalid_argument on dimension mismatch. *)

val qr_solve : Matrix.t -> float array -> float array
(** Least squares via Householder QR; requires [rows >= cols] and
    full column rank. *)

val fit_hyperplane : float array array -> float array -> float array
(** [fit_hyperplane points values] fits [values.(i) ~= w . points.(i) + c]
    and returns the array [w_1; ...; w_k; c] (coefficients then
    intercept).  This is exactly the paper's step 3-4: append a column
    of ones and solve. *)

val predict_hyperplane : float array -> float array -> float
(** [predict_hyperplane coeffs point] evaluates a hyperplane returned
    by {!fit_hyperplane} at [point]. *)

val residual_norm : Matrix.t -> float array -> float array -> float
(** [residual_norm a x b] is [||a x - b||_2]; useful to validate a
    fit. *)
