lib/objective/recorder.ml: Array Harmony_param List Objective Space
