lib/objective/objective.mli: Harmony_numerics Harmony_param Space
