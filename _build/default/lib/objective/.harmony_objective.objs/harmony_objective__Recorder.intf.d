lib/objective/recorder.mli: Harmony_param Objective Space
