lib/objective/testbed.mli: Objective
