lib/objective/testbed.ml: Array Float Harmony_param List Objective Param Printf Space
