lib/objective/objective.ml: Array Harmony_numerics Harmony_param Hashtbl Printf Space String
