(** Objective functions: what the tuner measures.

    An objective wraps a search space with an evaluation function and
    a direction.  Throughput-style metrics (the paper's WIPS) are
    higher-is-better; latency/time metrics are lower-is-better.  The
    tuner and all experiment code work against this interface, so the
    synthetic rule data, the web-service simulator, and analytic test
    functions are interchangeable. *)

open Harmony_param

type direction = Higher_is_better | Lower_is_better

type t = {
  space : Space.t;
  direction : direction;
  eval : Space.config -> float;
}

val create : space:Space.t -> direction:direction -> (Space.config -> float) -> t

val better : t -> float -> float -> bool
(** [better t a b] is true when performance [a] is strictly preferable
    to [b] under the objective's direction. *)

val best_of : t -> float array -> float
(** Best value in a non-empty array under the objective's direction. *)

val worst_of : t -> float array -> float

val eval_default : t -> float
(** Evaluate the all-defaults configuration. *)

val with_noise : Harmony_numerics.Rng.t -> level:float -> t -> t
(** [with_noise rng ~level t] multiplies every measurement by a factor
    uniform in [1-level, 1+level] — the paper's run-to-run
    perturbation (Section 5.2, 0% to +/-25%). *)

val with_snap : t -> t
(** Snap configurations onto the grid before evaluating; makes an
    objective total over continuous proposals. *)

val with_cache : t -> t
(** Memoize measurements per configuration: a repeated configuration
    returns its recorded value instead of re-measuring.  This is the
    paper's "save time by not retrying all those configurations again"
    within one execution; it also freezes noise, so noisy objectives
    become repeatable.  Unbounded cache — intended for tuning-scale
    evaluation counts. *)

val negate : t -> t
(** Flip the direction by negating measurements (useful for reusing
    minimizers as maximizers in tests). *)
