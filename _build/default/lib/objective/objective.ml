open Harmony_param
module Rng = Harmony_numerics.Rng

type direction = Higher_is_better | Lower_is_better

type t = {
  space : Space.t;
  direction : direction;
  eval : Space.config -> float;
}

let create ~space ~direction eval = { space; direction; eval }

let better t a b =
  match t.direction with
  | Higher_is_better -> a > b
  | Lower_is_better -> a < b

let best_of t values =
  if Array.length values = 0 then invalid_arg "Objective.best_of: empty array";
  Array.fold_left
    (fun acc v -> if better t v acc then v else acc)
    values.(0) values

let worst_of t values =
  if Array.length values = 0 then invalid_arg "Objective.worst_of: empty array";
  Array.fold_left
    (fun acc v -> if better t acc v then v else acc)
    values.(0) values

let eval_default t = t.eval (Space.defaults t.space)

let with_noise rng ~level t =
  if level < 0.0 then invalid_arg "Objective.with_noise: negative level";
  { t with eval = (fun c -> Rng.perturb rng level (t.eval c)) }

let with_snap t = { t with eval = (fun c -> t.eval (Space.snap t.space c)) }

let with_cache t =
  let table = Hashtbl.create 256 in
  let key c =
    String.concat "," (Array.to_list (Array.map (Printf.sprintf "%.17g") c))
  in
  let eval c =
    let k = key c in
    match Hashtbl.find_opt table k with
    | Some v -> v
    | None ->
        let v = t.eval c in
        Hashtbl.add table k v;
        v
  in
  { t with eval }

let negate t =
  let direction =
    match t.direction with
    | Higher_is_better -> Lower_is_better
    | Lower_is_better -> Higher_is_better
  in
  { t with direction; eval = (fun c -> -.t.eval c) }
