(** Analytic test objectives with known optima.

    Used by unit and property tests of the search kernels, and as
    cheap stand-ins when an experiment needs "some" landscape.  All
    are defined over explicit discrete grids. *)

val quadratic_bowl : ?dims:int -> ?target:float array -> unit -> Objective.t
(** Lower-is-better; minimum value [0] at [target] (defaults to the
    grid centre).  Each dimension spans [0, 100] step [1]. *)

val rosenbrock : ?dims:int -> unit -> Objective.t
(** The classic banana valley on a [-2.048, 2.048] grid with step
    0.016; lower-is-better with minimum 0 at all-ones. *)

val rastrigin : ?dims:int -> unit -> Objective.t
(** Highly multimodal; lower-is-better with minimum 0 at the origin,
    grid [-5.12, 5.12] step 0.08. *)

val interior_peak : ?dims:int -> ?peak:float array -> unit -> Objective.t
(** Higher-is-better single peak strictly inside the box — models the
    paper's observation that good web-server configurations are far
    from extreme values.  Peak value 100. *)

val step_plateau : ?dims:int -> unit -> Objective.t
(** Piecewise-constant landscape (plateaus), higher-is-better; stresses
    simplex behaviour on flat regions, like rule-generated synthetic
    data. *)

val with_irrelevant : Objective.t -> int list -> Objective.t
(** [with_irrelevant obj idxs] rebuilds the objective so the listed
    coordinates are ignored (replaced by their defaults before
    evaluation): ground-truth irrelevant parameters for sensitivity
    tests (Section 5.2). *)
