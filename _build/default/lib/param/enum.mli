(** Categorical (enumerated) parameters.

    Active Harmony tunes "what algorithm is being used (e.g., heap
    sort vs. quick sort)" as readily as buffer sizes (paper,
    Section 2).  A categorical parameter is encoded on the integer
    grid [0 .. n-1]; these helpers translate between labels and the
    encoded values so objectives can pattern-match on the label. *)

val param : name:string -> ?default:string -> string list -> Param.t
(** [param ~name labels] builds the encoded parameter.  [default] must
    be one of the labels (defaults to the first).
    @raise Invalid_argument on an empty or duplicated label list, or
    an unknown default. *)

val label_of : string list -> float -> string
(** Decode a configuration coordinate (snapped to the nearest index
    and clamped).
    @raise Invalid_argument on an empty label list. *)

val value_of : string list -> string -> float
(** Encode a label.
    @raise Not_found if absent. *)
