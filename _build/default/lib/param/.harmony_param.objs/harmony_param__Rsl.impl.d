lib/param/rsl.ml: Array Float Harmony_numerics Hashtbl List Param Printf Seq Space String
