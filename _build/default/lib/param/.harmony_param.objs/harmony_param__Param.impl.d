lib/param/param.ml: Array Float Format
