lib/param/space.ml: Array Float Format Harmony_numerics Hashtbl List Param Seq
