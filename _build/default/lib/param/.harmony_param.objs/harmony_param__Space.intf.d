lib/param/space.mli: Format Harmony_numerics Param Seq
