lib/param/rsl.mli: Harmony_numerics Seq Space
