lib/param/param.mli: Format
