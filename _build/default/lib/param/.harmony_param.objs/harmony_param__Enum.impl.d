lib/param/enum.ml: Float List Param String
