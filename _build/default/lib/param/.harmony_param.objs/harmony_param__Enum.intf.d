lib/param/enum.mli: Param
