(** The Active Harmony resource specification language, extended with
    parameter restriction (Appendix B of the paper).

    A specification is an ordered list of bundles such as

    {v
      { harmonyBundle B { int {1 8 1} }}
      { harmonyBundle C { int {1 9-$B 1} }}
    v}

    where a bound may be an arithmetic expression over the values of
    {e earlier} bundles ([$B]).  Restriction prunes infeasible regions
    before the search starts: only "meaningful" configurations are
    enumerated/sampled. *)

type expr =
  | Const of int
  | Ref of string  (** [$Name]: the value chosen for an earlier bundle *)
  | Neg of expr
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr  (** integer division *)

type bundle = { name : string; lo : expr; hi : expr; step : expr }

type t = private bundle list

exception Parse_error of string

val of_bundles : bundle list -> t
(** @raise Invalid_argument on duplicate names or a bound referring to
    a bundle that is not strictly earlier. *)

val parse : string -> t
(** Parse the concrete syntax above.
    @raise Parse_error on malformed input. *)

val to_string : t -> string
(** Round-trippable concrete syntax. *)

val names : t -> string list

val eval_expr : (string -> int) -> expr -> int
(** [eval_expr lookup e] evaluates [e]; [lookup] resolves [$Name]
    references.
    @raise Division_by_zero on division by zero. *)

val bounds : t -> int array -> int -> int * int * int
(** [bounds t values i] is the [(lo, hi, step)] of bundle [i] given the
    values chosen for bundles [0 .. i-1] (later entries of [values]
    are ignored).  The range is empty when [hi < lo]. *)

val static_bounds : t -> (int * int) array
(** Per-bundle [(lo, hi)] intervals that hold for {e every} feasible
    assignment, computed by interval arithmetic over the bound
    expressions: the smallest box containing the restricted space.  A
    box-constrained search kernel can run over this space with
    {!repair} projecting proposals into the restricted region.
    @raise Invalid_argument if interval evaluation proves a bundle's
    range always empty. *)

val to_space : t -> Space.t
(** The box space of {!static_bounds} (step from each bundle's step
    expression evaluated at the interval midpoints of its references;
    defaults at interval midpoints, snapped). *)

val is_feasible : t -> int array -> bool
(** Whether a full assignment satisfies every bundle's conditional
    range and step. *)

val feasible_count : ?limit:int -> t -> int
(** Number of feasible configurations, by recursive enumeration.
    Stops and returns [limit] once the count reaches [limit]
    (default [max_int]). *)

val enumerate : t -> int array Seq.t
(** Lazy enumeration of all feasible configurations, lexicographic in
    bundle order. *)

val sample : Harmony_numerics.Rng.t -> t -> int array option
(** Sequential conditional sampling: each bundle uniform within its
    conditional range.  [None] if an empty range is reached.  (Not
    uniform over the feasible set, but every feasible configuration
    has positive probability.) *)

val repair : t -> float array -> float array
(** Walk the bundles in order, snapping each coordinate into its
    conditional range given the already-repaired prefix.  When a range
    is empty the coordinate is set to its conditional lower bound and
    the result may be infeasible (check with {!is_feasible} after
    truncation).  This is how a box-constrained search kernel respects
    restrictions. *)
