(** A tunable parameter.

    Following the paper (Section 3), each parameter is specified with
    four values: minimum, maximum, default value, and the distance
    between two neighbour values (the step).  A parameter's legal
    values form the grid [min; min+step; ...; max]. *)

type t = private {
  name : string;
  min_value : float;
  max_value : float;
  step : float;
  default : float;
}

val make :
  name:string -> min_value:float -> max_value:float -> step:float ->
  default:float -> t
(** Builds a parameter.  The default is snapped onto the grid.
    @raise Invalid_argument if [max_value < min_value], [step <= 0],
    or the default lies outside the range. *)

val int_range : name:string -> lo:int -> hi:int -> ?step:int -> default:int -> unit -> t
(** Convenience constructor for integer-valued parameters
    (step defaults to 1). *)

val num_values : t -> int
(** Number of grid points. *)

val value_at : t -> int -> float
(** [value_at p i] is the [i]-th grid point.
    @raise Invalid_argument if [i] is out of range. *)

val values : t -> float array
(** All grid points, ascending. *)

val index_of : t -> float -> int
(** Index of the grid point nearest to the given value (after
    clamping into range). *)

val clamp : t -> float -> float
(** Clamp into [min_value, max_value]. *)

val snap : t -> float -> float
(** Clamp, then round to the nearest grid point.  This is the paper's
    adaptation of the simplex method to discrete spaces: "using the
    resulting values from the nearest integer point in the space". *)

val is_valid : t -> float -> bool
(** True when the value is (within 1e-9 of) a grid point in range. *)

val normalize : t -> float -> float
(** [normalize p v] maps the range onto [0, 1]
    (the paper's [v' = (v - vmin) / (vmax - vmin)]); a single-point
    range maps to [0]. *)

val denormalize : t -> float -> float
(** Inverse of {!normalize} followed by {!snap}. *)

val pp : Format.formatter -> t -> unit
