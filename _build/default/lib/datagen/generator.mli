(** Seeded synthetic-data generator: our substitute for DataGen 3.0.

    The generated object behaves like the paper's rule data: the joint
    space of tunable parameters and workload characteristics is
    partitioned into axis-aligned cells (a regular k-d partition —
    each cell is one CNF rule), and the performance inside a cell is
    constant: the value of a smooth ground-truth {e response} at the
    cell centre.  The partition is evaluated procedurally, so spaces
    far too large to materialize (the paper's 2^1000 motivation) still
    evaluate in O(dims); {!to_rules} materializes the explicit rule
    set for small spaces.

    The ground-truth response is a weighted sum of per-parameter
    unimodal bumps (interior optima), plus small pairwise interaction
    terms, with bump weights modulated by the workload characteristics
    — so different workloads give different parameter sensitivities,
    exactly the structure Sections 5 and 6 of the paper rely on.
    Designated {e irrelevant} parameters get zero weight and are never
    split on, so changing them never changes performance. *)

open Harmony_param
open Harmony_objective

type t

val generate :
  space:Space.t ->
  ?workload_dims:int ->
  ?irrelevant:int list ->
  ?cells_per_param:int ->
  ?cells_per_workload:int ->
  ?interaction_strength:float ->
  ?perf_range:float * float ->
  seed:int ->
  unit ->
  t
(** Defaults: 3 workload dimensions, no irrelevant parameters, 8
    cells per parameter, 4 per workload dimension, interaction
    strength 0.1, performance rescaled onto [1, 50] (the paper's
    Figure 4 normalization). *)

val synthetic_webservice : ?seed:int -> unit -> t
(** The Section 5 dataset: 15 tunable parameters named D..R (each an
    integer grid 1..10), of which H and M are performance-irrelevant,
    plus 3 workload characteristics (browsing, shopping, ordering
    weights). *)

val space : t -> Space.t
val workload_dims : t -> int
val irrelevant : t -> int list

val mix : browsing:float -> shopping:float -> ordering:float -> float array
(** Workload-characteristic vector; weights are normalized to sum
    to 1. *)

val browsing_mix : float array
val shopping_mix : float array
val ordering_mix : float array
(** TPC-W-style mixes: browsing 0.95/0.04/0.01, shopping
    0.80/0.15/0.05, ordering 0.50/0.25/0.25 (browse/shop/order
    weight). *)

val response : t -> Space.config -> workload:float array -> float
(** Smooth ground truth (before rule quantization). *)

val eval : t -> Space.config -> workload:float array -> float
(** Rule-data semantics: the response at the containing cell's
    centre. *)

val objective : t -> workload:float array -> Objective.t
(** Higher-is-better objective over the tunable space with the
    workload fixed. *)

val objective_of_rules :
  Rules.t -> space:Space.t -> ?workload:float array -> unit -> Objective.t
(** Tune directly against an explicit rule set (e.g. one written in
    {!Rules.of_text} notation): the rule input vector is the
    configuration followed by the fixed [workload] characteristics
    (default none).  Higher-is-better.
    @raise Invalid_argument when the rule arity is not
    [Space.dims space + Array.length workload]. *)

val to_rules : ?max_rules:int -> t -> Rules.t
(** Materialize the explicit CNF rule set (one rule per cell) over the
    joint space.
    @raise Invalid_argument when the cell count exceeds [max_rules]
    (default 100_000). *)
