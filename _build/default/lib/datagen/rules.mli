(** Conjunctive-normal-form performance rules, the format of the
    paper's DataGen synthetic data (Section 5.1).

    Each rule has the form [P_i <- C_a(v_j) & C_b(v_k) & ...] where the
    [C]s are range/equality tests over input variables (tunable
    parameters and workload characteristics).  A rule fires when all
    its conditions hold; rule sets are generated so that at most one
    rule fires for any input; when none fires, the performance of the
    {e closest} rule is returned. *)

type condition = { var : int; lo : float; hi : float }
(** [lo <= input.(var) <= hi]; equality tests have [lo = hi]. *)

type rule = { conditions : condition list; performance : float }

type t

val create : num_vars:int -> ranges:(float * float) array -> rule list -> t
(** [ranges] gives each variable's overall [min, max], used to
    normalize distances in the closest-rule fallback.
    @raise Invalid_argument if a condition references a variable out
    of range, has [lo > hi], or [ranges] has the wrong arity. *)

val num_vars : t -> int
val rules : t -> rule array

val satisfies : rule -> float array -> bool

val first_satisfied : t -> float array -> rule option

val conflict_free : t -> bool
(** True when no two rules can fire on the same input (pairwise
    box-intersection test — sound and exact for conjunctions of
    interval conditions). *)

val rule_distance : t -> rule -> float array -> float
(** Euclidean distance (in range-normalized coordinates) from the
    input point to the rule's condition box; [0] when the rule is
    satisfied. *)

val eval : t -> float array -> float
(** The paper's semantics: the performance of the satisfied rule, or
    of the closest rule when none is satisfied (ties towards the
    earliest rule).
    @raise Invalid_argument on arity mismatch or an empty rule set. *)

exception Parse_error of string

val of_text : num_vars:int -> ranges:(float * float) array -> string -> t
(** Parse a hand-written rule file in the paper's notation, one rule
    per line:

    {v
      # performance <- conjunction of conditions
      42.5 <- v0 = 3 & 2 <= v1 < 8
      17   <- v2 >= 5
      9    <-
    v}

    Conditions accept [=], chained or single [<=]/[<], and [>=]/[>];
    strict bounds are tightened by 1e-9 (values are continuous).
    Blank lines and [#] comments are ignored.
    @raise Parse_error on malformed input; the usual
    [Invalid_argument]s of {!create} still apply. *)

val to_text : t -> string
(** Render back into the {!of_text} format (always with closed
    bounds). *)
