lib/datagen/rules.mli:
