lib/datagen/generator.ml: Array Float Fun Harmony_numerics Harmony_objective Harmony_param List Objective Param Rules Space
