lib/datagen/rules.ml: Array Buffer List Printf String
