lib/datagen/generator.mli: Harmony_objective Harmony_param Objective Rules Space
